//! Cost-aware planning for `SELECT`: access paths, multi-index AND,
//! cardinality-ordered joins and staged predicate pushdown.
//!
//! The executor used to materialize the whole base table and evaluate
//! `WHERE` after joins; this module decides, per statement, how to touch
//! as few rows as possible. Planning has five steps:
//!
//! 1. **Conjunct extraction.** The `WHERE` tree is split at top-level
//!    `AND`s. Each conjunct is classified by the set of FROM-tables it
//!    references: *base-only* conjuncts (every column resolves —
//!    unambiguously — to the base table) are evaluated before joins
//!    multiply rows; all other conjuncts are assigned to the earliest
//!    join level at which every table they reference is bound (step 5).
//!    If *any* conjunct fails to resolve over the joined layout, the plan
//!    degrades to the conservative shape — full scan, FROM-order joins,
//!    every conjunct evaluated post-join in original order — preserving
//!    the executor's lazy per-row error semantics byte for byte.
//!
//! 2. **Sargability.** A base-only conjunct is *sargable* when it has the
//!    shape `column <op> literal` with `op ∈ {=, <, <=, >, >=}` and the
//!    literal coerces to the column type. Equality conjuncts can be served
//!    by a hash index ([`Table::lookup`]); all sargable shapes can be
//!    served by an ordered [`RangeIndex`] when
//!    one exists on the column (equality becomes the degenerate range
//!    `[v, v]`). Conjuncts on the same column are folded into a single
//!    bound pair, so `price > 5 AND price <= 9` probes the index once.
//!    `!=`, `LIKE`, `IS NULL`, `OR` and `NOT` are never sargable and stay
//!    as filters. `NULL` literals never match under `WHERE`, so indexes
//!    (which exclude NULLs) are always safe to substitute for a scan.
//!
//! 3. **Index-vs-scan choice.** Every sargable candidate is priced with
//!    the table statistics from [`crate::stats`]: equality via
//!    [`ColumnStats::eq_selectivity`] (exact for values tracked in the
//!    MCV list, uniform over the remaining distinct values otherwise),
//!    ranges via [`Histogram::range_selectivity`](crate::stats::Histogram::range_selectivity) when the column is
//!    numeric/date (falling back to the classic 1/3 guess without a
//!    histogram). The cheapest candidate wins; an index path is only
//!    chosen when its estimated selectivity is at or below
//!    [`INDEX_SELECTIVITY_THRESHOLD`] — for predicates that keep most of
//!    the table, a sequential scan avoids the index's pointer-chasing and
//!    sort overhead and degrades gracefully, in the spirit of the robust
//!    hybrid-join literature.
//!
//! 4. **Multi-index AND.** When several sargable conjuncts hit *different*
//!    indexed columns, their RowId sets are fetched independently and
//!    intersected (smallest set first, via a sorted merge). Fetching a
//!    probe costs roughly `selectivity × rows`, so a probe joins the
//!    intersection only when its estimated selectivity is at or below
//!    [`INTERSECT_SELECTIVITY_THRESHOLD`] — a poorly selective conjunct
//!    is cheaper to apply as a residual filter over the already-small
//!    intersection than to fetch wholesale. The combined selectivity
//!    comes from the correlation-aware estimator (see *Selectivity
//!    estimation* below), and a probe whose joint statistics against an
//!    already-chosen equality show it would barely shrink the
//!    intersection is declined outright.
//!
//! 5. **Join ordering and pushdown.** Per-table post-filter cardinality is
//!    estimated from [`TableStats`] (`row_count ×` the combined
//!    selectivity of the single-table conjuncts assigned to that table,
//!    using the composite estimator below). Joins are then ordered
//!    greedily smallest-estimate-first instead of FROM-order, restricted
//!    to joins whose already-bound side is in the stream (the FROM-order
//!    continuation always remains eligible, so the greedy pass cannot dead
//!    end). Each non-base conjunct is evaluated at the earliest join
//!    level where all its tables are bound, pruning tuples before later
//!    joins multiply them. The executor restores the canonical FROM-order
//!    row order afterwards, so reordering is invisible in results.
//!
//! The chosen conjuncts are *consumed*: the executor does not re-evaluate
//! the predicate the access path already guarantees. Everything else stays
//! in [`SelectPlan::pushed`] / [`SelectPlan::stages`].
//!
//! # Join strategies
//!
//! Every join step carries a [`JoinStrategy`], assigned after the join
//! order is fixed by walking the execution order with a running estimate
//! of the outer tuple count (base rows surviving the access path, then
//! multiplied per join by the right side's average bucket size — exact
//! index distinct counts when available, [`TableStats`] otherwise):
//!
//! - [`IndexProbe`](JoinStrategy::IndexProbe) whenever a hash index
//!   exists on the join column: the sorted bucket is borrowed per outer
//!   tuple at O(1), no setup cost — probing itself is unbeatable, so it
//!   is never priced against the others (only its optional pre-filter
//!   is, see *Build-side pushdown*).
//! - Otherwise the two one-pass strategies are priced against each
//!   other. [`BuildHash`](JoinStrategy::BuildHash) costs
//!   [`HASH_BUILD_COST_FACTOR`]` × |right| + outer` (one hashing pass
//!   over the right side, then O(1) probes);
//!   [`MergeRange`](JoinStrategy::MergeRange) costs
//!   `|right| + outer × log₂(outer)` (walk the pre-built ordered index,
//!   sort the outer keys) and is only eligible when *both* sides of the
//!   ON key have an ordered index. Small outer streams against large
//!   right sides favour the merge (no build allocation at all); big
//!   streams amortize the build and favour the hash map.
//!
//! Before this layer, an unindexed join column degraded to a scan of the
//! right table *per outer tuple* inside [`Table::lookup`] — an
//! O(outer × inner) blowup, the robustness failure the dynamic
//! hybrid-hash literature warns about. The executor preserves
//! ascending-RowId canonical order under every strategy (hash buckets
//! are built in scan order; the merge path computes per-tuple matches,
//! then emits in stream order), so strategy choice — like join
//! reordering — is invisible in results. All strategies share the same
//! key semantics: NULL and NaN keys never join, and Int/Float keys
//! compare numerically.
//!
//! # Build-side pushdown
//!
//! A join-side conjunct that references only the join's own table (e.g.
//! `screening.price > 11.0` on a `JOIN screening`) used to run purely as
//! a residual filter *after* the join produced its tuples — the build
//! side was always hashed (or the ordered index always walked) in full.
//! Strategy assignment now prices the join table's own access path over
//! those conjuncts, exactly as the base table's is priced: the sargable
//! ones among them go through `choose_table_access` with the join
//! table's cached statistics, and when the resulting probe set is
//! selective enough that fetching it plus building over the filtered
//! rows beats the unfiltered strategy
//! ([`HASH_BUILD_COST_FACTOR`]` × |right|` for the hash build,
//! `|right| + outer × log₂(outer)` for the merge), the join step carries
//! that path in [`PlannedJoin::build_access`]:
//!
//! - [`BuildHash`](JoinStrategy::BuildHash) builds its key → RowIds map
//!   only over the fetched RowId set
//!   ([`Table::join_map_filtered`](crate::table::Table::join_map_filtered)),
//!   shrinking the build from `|right|` to `selectivity × |right|`
//!   insertions.
//! - [`MergeRange`](JoinStrategy::MergeRange) intersects each matched
//!   bucket with the fetched set; when one of the probes bounds the join
//!   key itself, the ordered-index walk is additionally clamped to those
//!   bounds ([`RangeIndex::entries_range`]).
//!
//! The filtered estimate can flip the build-vs-merge choice in either
//! direction: a selective probe makes a filtered hash build cheaper than
//! walking the full ordered index, while a probe on the join key makes a
//! clamped merge cheaper than any build. Conjuncts consumed by the
//! pushdown are dropped from the residual stages — the fetched set
//! already guarantees them (same exactness machinery as base-table
//! consumption, including the NaN-bucket reconciliation) — so they are
//! never evaluated twice.
//!
//! [`IndexProbe`](JoinStrategy::IndexProbe) joins price the pushdown
//! too, against the probe work it saves rather than a build: fetching
//! the filtered set costs about `selectivity × |right|` once and shrinks
//! every probed bucket's intersection by the same factor, so it is
//! accepted exactly when `fetch + selectivity × probes < probes` (with
//! `probes = outer × avg_bucket`) — a large outer stream against a
//! selective conjunct takes the pre-filter, a handful of point probes
//! keeps the bare bucket. The executor intersects each probed bucket
//! with the fetched set, mirroring the merge path. Pushdown is disabled
//! by [`PlanOptions::build_pushdown`]` = false`, which the legacy
//! planner shapes use so benchmarks and the differential suite can pin
//! the unfiltered generation against it.
//!
//! # Memory budget
//!
//! [`PlanOptions::memory_budget`] bounds the executor's auxiliary
//! memory (see [`super::budget`] for the charge model). Planning reacts
//! in two places. A [`BuildHash`](JoinStrategy::BuildHash) whose priced
//! build-map footprint ([`super::budget::join_build_bytes`] over the
//! post-pushdown cardinality and distinct-key estimates) exceeds the
//! budget's build share is priced with one extra pass over the build
//! side — the partitioning cost — which can flip the choice to
//! [`MergeRange`](JoinStrategy::MergeRange) (which materializes
//! nothing) when both sides are ordered. If the hash build still wins,
//! the step carries [`PlannedJoin::partitions`] > 1 and the executor
//! runs the partitioned build: one partition's map resident at a time,
//! merged back into canonical ascending-RowId order. The join column's
//! MCV statistics supply [`PlannedJoin::hot_keys`] — keys holding at
//! least [`HOT_KEY_FRACTION`] of the build side — which bypass
//! partitioning on a small always-resident map, so skew cannot inflate
//! one partition past the share. The executor re-checks the decision at
//! run time against actual row counts, so a stale estimate degrades
//! (or stays in place) correctly; structures with no graceful fallback
//! fail atomically with
//! [`TxdbError::ResourceExhausted`](crate::TxdbError).
//!
//! `choose_table_access` is shared with the typed API:
//! [`Table::select`](crate::table::Table::select) routes its predicate
//! through the same candidate pricing (with exact hash-bucket sizes when
//! no statistics are available) instead of its former smallest-bucket
//! heuristic.
//!
//! # Selectivity estimation
//!
//! Leaf predicates are priced from [`TableStats`]: equality from the MCV
//! list (clamped to the least tracked frequency for untracked values),
//! ranges from the histogram with the boundary value's equality mass
//! subtracted for strict (`Bound::Excluded`) bounds, both scaled by the
//! column's fill rate so predicates on NULL-heavy columns stop
//! over-estimating (comparisons never match NULL). Conjunctions combine
//! correlation-aware instead of multiplying blindly:
//!
//! - `a = x AND b = y` over a column pair with joint (2-D) MCV
//!   statistics ([`crate::stats::JointStats`], computed for low-distinct
//!   pairs during the stats pass) is priced from the *observed* joint
//!   frequency — the independence product under-estimates badly when the
//!   columns are correlated (city ↔ country), which mis-prices the
//!   intersection cutoff, join order and the build-vs-merge choice.
//! - Conjunct pairs without joint evidence combine with **exponential
//!   backoff**: selectivities sorted ascending contribute
//!   `s₁ · s₂^½ · s₃^¼ · …`, so the most selective conjunct counts in
//!   full while further conjuncts are progressively discounted — the
//!   estimator stays honest about *unknown* correlation instead of
//!   compounding confident errors. Range conjuncts on the same column
//!   are folded into a single histogram probe first (they are the same
//!   dimension, not a correlation hazard).
//!
//! [`PlanOptions::independence_only`] freezes the PR 4 estimator (raw
//! products everywhere) so benches and the differential
//! estimator-accuracy harness can compare both on identical executor
//! code. Bad estimates — not bad algorithms — are what flip plans to
//! pathological shapes (cf. the robust dynamic hybrid hash join
//! literature), so estimator changes are gated the same way execution
//! strategies are.

use std::ops::Bound;

use crate::database::Database;
use crate::error::{Result, TxdbError};
use crate::index::RangeIndex;
use crate::row::RowId;
use crate::stats::{ColumnStats, TableStats};
use crate::table::Table;
use crate::value::{DataType, Value};

use super::ast::{ColumnRef, SelectStmt, SqlExpr};
use super::budget::{build_partition_count, join_build_bytes};
use crate::predicate::CmpOp;

/// Estimated fraction of rows a predicate may keep while an index lookup
/// is still considered cheaper than a sequential scan.
pub const INDEX_SELECTIVITY_THRESHOLD: f64 = 0.3;

/// The deliberately tight budget of [`PlanOptions::tight_budget`]: small
/// enough that realistic unindexed joins cross the build share and
/// partition, large enough that the other tracked structures (probe
/// sets, sort keys, group maps) never overrun on ordinary data — so the
/// differential suite can run every generated query under it and demand
/// byte-identical results.
pub const TIGHT_BUDGET_BYTES: usize = 64 * 1024;

/// A join key is *hot* when its MCV-tracked bucket holds at least this
/// fraction of the build side's rows — big enough that pinning the
/// bucket resident beats re-materializing it inside a partition.
pub const HOT_KEY_FRACTION: f64 = 1.0 / 16.0;

/// At most this many hot keys get the dedicated resident path; the MCV
/// list is sorted by descending count, so these are the heaviest.
pub const HOT_KEY_LIMIT: usize = 8;

/// Per-row cost weight of inserting into a hash-join build map relative
/// to walking a pre-built ordered index (hashing + bucket allocation vs.
/// a pointer advance). Used when pricing [`JoinStrategy::BuildHash`]
/// against [`JoinStrategy::MergeRange`].
pub const HASH_BUILD_COST_FACTOR: f64 = 2.0;

/// Default rows per morsel of a parallel scan or hash build: large
/// enough that claiming a morsel (one atomic increment) is noise
/// against the per-row work, small enough that a 4-worker pool
/// load-balances a 10k-row table.
pub const MORSEL_ROWS: usize = 1024;

/// A table must hold at least this many rows before the planner
/// parallelizes its scan or hash build: below it, spawning scoped
/// workers costs more than the fetch itself. Two default morsels — the
/// smallest split where a second worker has a whole morsel to claim.
pub const PARALLEL_ROW_THRESHOLD: usize = 2 * MORSEL_ROWS;

/// Estimated fraction of rows a *secondary* probe may keep while fetching
/// its RowId set for the intersection is still considered cheaper than
/// filtering the primary probe's (already small) result. Fetch cost is
/// proportional to the probe's own cardinality, so this is tighter than
/// [`INDEX_SELECTIVITY_THRESHOLD`].
pub const INTERSECT_SELECTIVITY_THRESHOLD: f64 = 0.2;

/// One output position of a (possibly joined) row stream.
#[derive(Debug, Clone)]
pub struct Slot {
    /// Ordinal of the owning table in FROM-order (0 = base table).
    pub table_ord: usize,
    /// Column index within the owning table's schema.
    pub col_idx: usize,
    /// Owning table name.
    pub table: String,
    /// Column name.
    pub column: String,
    /// Column type.
    pub ty: DataType,
}

/// Column layout of the row stream produced by `FROM base JOIN ...`.
#[derive(Debug, Clone)]
pub struct Layout {
    pub slots: Vec<Slot>,
    /// Number of tables (base + joins).
    pub tables: usize,
}

impl Layout {
    /// Build the full layout for a SELECT (base table plus all joins).
    pub fn build(db: &Database, sel: &SelectStmt) -> Result<Layout> {
        let mut layout = Layout {
            slots: Vec::new(),
            tables: 0,
        };
        layout.push_table(db, &sel.table)?;
        for join in &sel.joins {
            layout.push_table(db, &join.table)?;
        }
        Ok(layout)
    }

    fn push_table(&mut self, db: &Database, table: &str) -> Result<()> {
        let t = db.table(table)?;
        let ord = self.tables;
        for (i, c) in t.schema().columns().iter().enumerate() {
            self.slots.push(Slot {
                table_ord: ord,
                col_idx: i,
                table: table.to_string(),
                column: c.name.clone(),
                ty: c.ty,
            });
        }
        self.tables += 1;
        Ok(())
    }

    /// Resolve a column reference over the whole layout: exactly one slot
    /// must match (qualified references match name + table).
    pub fn resolve(&self, r: &ColumnRef) -> Result<usize> {
        self.resolve_prefix(r, self.tables)
    }

    /// Resolve against only the first `tables` tables — used for join keys,
    /// which (as before the planner) may only reference tables already in
    /// the FROM-order stream.
    pub fn resolve_prefix(&self, r: &ColumnRef, tables: usize) -> Result<usize> {
        let mut found: Option<usize> = None;
        for (i, s) in self.slots.iter().enumerate() {
            if s.table_ord >= tables {
                break;
            }
            if s.column == r.column && r.table.as_ref().is_none_or(|rt| rt == &s.table) {
                if found.is_some() {
                    return Err(TxdbError::Parse(format!(
                        "ambiguous column reference `{r}`"
                    )));
                }
                found = Some(i);
            }
        }
        found.ok_or_else(|| TxdbError::UnknownColumn {
            table: r.table.clone().unwrap_or_else(|| "<any>".into()),
            column: r.column.clone(),
        })
    }
}

/// One index probe of an access path: fetches a RowId set from a single
/// index, to be intersected with its siblings.
#[derive(Debug, Clone, PartialEq)]
pub enum IndexProbe {
    /// Hash-index point lookup: `column = value`.
    Eq { column: String, value: Value },
    /// Ordered-index range probe over `column`.
    Range {
        column: String,
        lo: Bound<Value>,
        hi: Bound<Value>,
        /// Whether a NaN cell satisfies every folded conjunct. The
        /// engine's comparison semantics collapse `NaN <op> float` to
        /// `Equal`, so NaN cells pass `>=`/`<=` (against a float
        /// literal) but fail `<`, `>` and `=` — while the ordered index
        /// sorts NaN above every number, i.e. inside the range exactly
        /// when the upper bound is unbounded. [`IndexProbe::fetch`]
        /// reconciles the two so consumed conjuncts and the typed
        /// superset invariant stay exact.
        include_nan: bool,
    },
}

impl IndexProbe {
    /// The probed column.
    pub fn column(&self) -> &str {
        match self {
            IndexProbe::Eq { column, .. } | IndexProbe::Range { column, .. } => column,
        }
    }

    /// Fetch the probe's RowId set, sorted ascending.
    pub fn fetch(&self, table: &Table) -> Result<Vec<RowId>> {
        match self {
            IndexProbe::Eq { column, value } => {
                // `lookup` guarantees ascending RowId order (buckets are
                // maintained sorted; the scan fallback walks id order).
                table.lookup(column, value)
            }
            IndexProbe::Range {
                column,
                lo,
                hi,
                include_nan,
            } => {
                // RangeIndex::range already returns ascending ids.
                let mut rids = table.range_lookup(column, lo.as_ref(), hi.as_ref())?;
                // NaN cells sort above every number in the ordered index,
                // so they land in the fetched range exactly when the
                // upper bound is unbounded — which may disagree with
                // whether predicate evaluation accepts them (see
                // `include_nan`). Add or strip the NaN bucket to match.
                let nan_in_range = matches!(hi, Bound::Unbounded);
                if *include_nan != nan_in_range {
                    let nan = Value::Float(f64::NAN);
                    let nan_ids =
                        table.range_lookup(column, Bound::Included(&nan), Bound::Included(&nan))?;
                    if !nan_ids.is_empty() {
                        if *include_nan {
                            rids.extend(nan_ids);
                            rids.sort_unstable();
                        } else {
                            rids.retain(|r| nan_ids.binary_search(r).is_err());
                        }
                    }
                }
                Ok(rids)
            }
        }
    }

    /// Whether `row` would be in this probe's fetched set if it were the
    /// table's newest version — the per-row form of [`IndexProbe::fetch`].
    /// MVCC-visible execution uses it to re-verify consumed conjuncts
    /// against the *visible* version of a row: indexes hold the union of
    /// every version's keys, so a fetched set read under a snapshot is a
    /// superset that may admit rids whose visible cell no longer matches.
    pub fn matches_row(&self, table: &Table, row: &crate::row::Row) -> Result<bool> {
        let idx = table.schema().require_column(self.column())?;
        let cell = row.get(idx).unwrap_or(&Value::Null);
        if cell.is_null() {
            // Neither index kind ever holds NULL cells.
            return Ok(false);
        }
        Ok(match self {
            // Hash buckets are keyed by canonical value equality.
            IndexProbe::Eq { value, .. } => cell == value,
            IndexProbe::Range {
                lo,
                hi,
                include_nan,
                ..
            } => {
                if matches!(cell, Value::Float(f) if f.is_nan()) {
                    // NaN sorts above every number; `fetch` adds or strips
                    // the NaN bucket to match predicate semantics.
                    *include_nan
                } else {
                    use crate::index::OrdKey;
                    use std::cmp::Ordering;
                    let above_lo = match lo {
                        Bound::Unbounded => true,
                        Bound::Included(v) => OrdKey::cmp_values(cell, v) != Ordering::Less,
                        Bound::Excluded(v) => OrdKey::cmp_values(cell, v) == Ordering::Greater,
                    };
                    let below_hi = match hi {
                        Bound::Unbounded => true,
                        Bound::Included(v) => OrdKey::cmp_values(cell, v) != Ordering::Greater,
                        Bound::Excluded(v) => OrdKey::cmp_values(cell, v) == Ordering::Less,
                    };
                    above_lo && below_hi
                }
            }
        })
    }
}

/// How the executor reaches the base table's rows.
#[derive(Debug, Clone, PartialEq)]
pub enum AccessPath {
    /// Sequential scan of all rows.
    FullScan,
    /// One or more index probes; their RowId sets are intersected
    /// (smallest actual set first).
    Index(Vec<IndexProbe>),
}

impl AccessPath {
    /// Short form for logs/tests: `scan`, `index_eq(col)`,
    /// `index_range(col)`, `index_and(col1&col2)`.
    pub fn describe(&self) -> String {
        match self {
            AccessPath::FullScan => "scan".to_string(),
            AccessPath::Index(probes) => match probes.as_slice() {
                [IndexProbe::Eq { column, .. }] => format!("index_eq({column})"),
                [IndexProbe::Range { column, .. }] => format!("index_range({column})"),
                many => {
                    let cols: Vec<&str> = many.iter().map(IndexProbe::column).collect();
                    format!("index_and({})", cols.join("&"))
                }
            },
        }
    }

    /// Fetch and intersect the probes' RowId sets; `None` for a scan.
    /// The result is sorted ascending (canonical scan order).
    pub fn fetch_row_ids(&self, table: &Table) -> Result<Option<Vec<RowId>>> {
        let AccessPath::Index(probes) = self else {
            return Ok(None);
        };
        let mut sets = Vec::with_capacity(probes.len());
        for p in probes {
            sets.push(p.fetch(table)?);
        }
        // Intersect smallest-first: the running result can only shrink, so
        // starting from the smallest set minimizes merge work.
        sets.sort_by_key(Vec::len);
        let mut iter = sets.into_iter();
        let mut acc = iter.next().unwrap_or_default();
        for set in iter {
            if acc.is_empty() {
                break;
            }
            acc = intersect_sorted(&acc, &set);
        }
        Ok(Some(acc))
    }

    /// Per-row form of [`AccessPath::fetch_row_ids`]: whether `row`
    /// satisfies every probe. `FullScan` matches everything. Used by
    /// MVCC-visible execution to re-verify a superset fetch against the
    /// visible version of each row.
    pub fn matches_row(&self, table: &Table, row: &crate::row::Row) -> Result<bool> {
        let AccessPath::Index(probes) = self else {
            return Ok(true);
        };
        for p in probes {
            if !p.matches_row(table, row)? {
                return Ok(false);
            }
        }
        Ok(true)
    }
}

/// Two-pointer intersection of ascending RowId vectors. Shared with the
/// executor's merge join, which intersects matched buckets with a
/// build-side pushdown's fetched RowId set.
pub(crate) fn intersect_sorted(a: &[RowId], b: &[RowId]) -> Vec<RowId> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Planner feature switches. The defaults enable everything; the
/// restricted shapes exist so benchmarks and differential tests can
/// compare optimizer generations on identical code.
#[derive(Debug, Clone, Copy)]
pub struct PlanOptions {
    /// Intersect RowId sets from multiple sargable conjuncts.
    pub multi_index: bool,
    /// Order joins by estimated cardinality instead of FROM-order.
    pub reorder_joins: bool,
    /// Evaluate join-side conjuncts at the earliest level where their
    /// tables are bound (off: everything runs after the last join).
    pub join_pushdown: bool,
    /// Choose a [`JoinStrategy`] per join step (build-side hash join /
    /// merge join for unindexed join columns). Off: every join runs as
    /// index nested-loop with the per-key scan fallback — the PR 2 shape,
    /// kept so benchmarks and the differential suite can pin the old
    /// (quadratic) fallback against the join-execution layer.
    pub join_strategies: bool,
    /// Push join-table single-table conjuncts into the join's own access
    /// path ([`PlannedJoin::build_access`]): a selective probe pre-filters
    /// the `BuildHash` build side or clamps the `MergeRange` walk, and
    /// the consumed conjuncts leave the residual stages (see the
    /// module-level *Build-side pushdown* section). Off: the build side
    /// is always processed in full and every join-side conjunct runs as
    /// a staged filter — the PR 3 shape, kept for benchmarks and the
    /// differential suite. Has no effect unless `join_strategies` is on.
    pub build_pushdown: bool,
    /// Correlation-aware selectivity estimation: price `a = x AND b = y`
    /// from joint (2-D) MCV statistics when the column pair is tracked
    /// ([`crate::stats::JointStats`]), and combine conjunct selectivities
    /// without joint evidence by exponential backoff
    /// (`s₁ · s₂^½ · s₃^¼ · …`, ascending) instead of the raw
    /// independence product. Off: every combination is the plain product
    /// — the PR 4 estimator, kept so benches and the differential
    /// estimator-accuracy harness can compare the two on identical code.
    /// Only affects *estimates* (and the decisions priced from them);
    /// never results.
    pub correlation_aware: bool,
    /// Execution memory budget in bytes. When set, every materializing
    /// executor structure charges an [`ExecBudget`](super::budget::ExecBudget);
    /// hash builds whose priced footprint exceeds the build share
    /// degrade to the partitioned path (see
    /// [`PlannedJoin::partitions`]), and anything else that overruns
    /// fails atomically with
    /// [`TxdbError::ResourceExhausted`](crate::error::TxdbError).
    /// `None` (the default) tracks nothing and never degrades. Never
    /// affects results — only memory behavior and the plan's build
    /// shape.
    pub memory_budget: Option<usize>,
    /// Degree of intra-query parallelism: base-table scans and hash-join
    /// builds over at least [`parallel_row_threshold`](Self::parallel_row_threshold)
    /// rows split into [`morsel_rows`](Self::morsel_rows)-sized morsels
    /// executed on a scoped-thread pool of this many workers (see
    /// `sql::pool`). `1` — the default — is today's exact serial code
    /// path; the default is overridable via the `TXDB_THREADS`
    /// environment variable (read once per process). Never affects
    /// results: every parallel merge recombines locally-ordered partials
    /// into the canonical ascending-RowId order, byte-identical to the
    /// serial stream.
    pub worker_threads: usize,
    /// Rows per morsel of a parallel scan or build ([`MORSEL_ROWS`] by
    /// default). Tests and the differential `parallel` shape shrink it
    /// so tiny corpus tables still exercise the parallel operators.
    pub morsel_rows: usize,
    /// Minimum table rows before the planner parallelizes an operator
    /// over it ([`PARALLEL_ROW_THRESHOLD`] by default).
    pub parallel_row_threshold: usize,
}

/// The process-wide `TXDB_THREADS` override for
/// [`PlanOptions::worker_threads`], read once: unset, unparsable or
/// zero means the serial default of 1.
fn default_worker_threads() -> usize {
    static THREADS: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *THREADS.get_or_init(|| {
        std::env::var("TXDB_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(1)
    })
}

impl Default for PlanOptions {
    fn default() -> PlanOptions {
        PlanOptions {
            multi_index: true,
            reorder_joins: true,
            join_pushdown: true,
            join_strategies: true,
            build_pushdown: true,
            correlation_aware: true,
            // The `tight-budget` feature flips the *default* to the
            // differential suite's tight budget, so CI can run the whole
            // test suite with the degradation paths live.
            memory_budget: if cfg!(feature = "tight-budget") {
                Some(TIGHT_BUDGET_BYTES)
            } else {
                None
            },
            worker_threads: default_worker_threads(),
            morsel_rows: MORSEL_ROWS,
            parallel_row_threshold: PARALLEL_ROW_THRESHOLD,
        }
    }
}

impl PlanOptions {
    /// The PR 1 planner shape: one access path per query, FROM-order
    /// joins, all join-side predicates evaluated after the last join,
    /// per-key join fallback. (Estimator frozen to the independence
    /// product, like every legacy shape.)
    pub fn single_access_path() -> PlanOptions {
        PlanOptions {
            multi_index: false,
            reorder_joins: false,
            join_pushdown: false,
            join_strategies: false,
            build_pushdown: false,
            correlation_aware: false,
            memory_budget: None,
            ..PlanOptions::default()
        }
    }

    /// The PR 2 planner shape: full optimizer, but every join still runs
    /// as index nested-loop per key (an unindexed join column degrades to
    /// a per-outer-tuple scan inside [`Table::lookup`]).
    pub fn per_key_joins() -> PlanOptions {
        PlanOptions {
            join_strategies: false,
            build_pushdown: false,
            correlation_aware: false,
            ..PlanOptions::default()
        }
    }

    /// The PR 3 planner shape: join strategies enabled, but the build
    /// side is never pre-filtered by its own access path. Benchmarks pin
    /// the pushdown's win against this shape.
    pub fn no_build_pushdown() -> PlanOptions {
        PlanOptions {
            build_pushdown: false,
            correlation_aware: false,
            ..PlanOptions::default()
        }
    }

    /// The PR 4 estimator: full planner, but every conjunct combination
    /// is the raw independence product — no joint statistics, no
    /// exponential backoff. The escape hatch benches and the differential
    /// estimator-accuracy harness pin the correlation-aware estimator
    /// against.
    pub fn independence_only() -> PlanOptions {
        PlanOptions {
            correlation_aware: false,
            ..PlanOptions::default()
        }
    }

    /// The PR 6 robustness shape: the full planner under a deliberately
    /// tight [`memory_budget`](PlanOptions::memory_budget)
    /// ([`TIGHT_BUDGET_BYTES`]). Hash builds that cross the build share
    /// partition (with MCV hot keys pinned resident) and every
    /// materializing structure is tracked — the differential suite's
    /// sixth shape, which must agree byte-for-byte with the unbudgeted
    /// planner on every generated query.
    pub fn tight_budget() -> PlanOptions {
        PlanOptions {
            memory_budget: Some(TIGHT_BUDGET_BYTES),
            ..PlanOptions::default()
        }
    }

    /// The PR 9 parallel shape: the full planner with a 4-worker morsel
    /// pool, thresholds shrunk so even the differential corpus's tiny
    /// tables split into multiple morsels — every eligible scan and
    /// hash build actually runs parallel. Must agree byte-for-byte with
    /// the reference executor on every generated query; production
    /// defaults keep the larger [`MORSEL_ROWS`] /
    /// [`PARALLEL_ROW_THRESHOLD`] and opt in via `TXDB_THREADS`.
    pub fn parallel() -> PlanOptions {
        PlanOptions {
            worker_threads: 4,
            morsel_rows: 4,
            parallel_row_threshold: 8,
            ..PlanOptions::default()
        }
    }

    /// The degree of parallelism the planner grants an operator over
    /// `rows` input rows: the configured pool size when the row count
    /// clears [`parallel_row_threshold`](Self::parallel_row_threshold),
    /// serial otherwise. The executor additionally clamps to the actual
    /// morsel count at run time.
    pub(crate) fn parallel_degree(&self, rows: usize) -> usize {
        if self.worker_threads > 1 && rows >= self.parallel_row_threshold.max(2) {
            self.worker_threads
        } else {
            1
        }
    }
}

/// How one join step reaches the matching rows of its right (newly
/// joined) table. Chosen by the planner from index availability and the
/// build-vs-probe cost model (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinStrategy {
    /// Per-outer-tuple probe of the right side's sorted hash-index
    /// bucket — today's path, kept whenever a hash index exists on the
    /// join column. Falls back to a per-key scan when the index
    /// disappears under the plan (defensive; the planner never picks it
    /// for an unindexed column when strategies are enabled).
    IndexProbe,
    /// Build a key → RowIds map over the whole right side once
    /// ([`Table::join_map`]), then probe it per outer tuple. NULL and
    /// NaN keys are excluded at build time (SQL join semantics); Int and
    /// Float keys unify through [`Value`]'s canonical hash/equality.
    BuildHash,
    /// Merge the outer tuples (sorted by join key) against the right
    /// side's ordered index entries — no build allocation at all. Only
    /// eligible when both sides of the ON key have an ordered index.
    MergeRange,
}

impl JoinStrategy {
    /// Short form for plan summaries: `probe`, `hash`, `merge`.
    pub fn describe(&self) -> &'static str {
        match self {
            JoinStrategy::IndexProbe => "probe",
            JoinStrategy::BuildHash => "hash",
            JoinStrategy::MergeRange => "merge",
        }
    }
}

/// One join with its key references resolved (in FROM-order semantics, so
/// resolution errors are independent of the chosen execution order).
#[derive(Debug, Clone)]
pub struct PlannedJoin {
    /// Index into `sel.joins`.
    pub from_idx: usize,
    /// FROM ordinal of the newly joined table (`from_idx + 1`).
    pub table_ord: usize,
    /// Joined table name.
    pub table: String,
    /// Layout position of the already-bound side of the ON key.
    pub left_slot: usize,
    /// Join column on the newly joined table.
    pub right_col: String,
    /// How the executor reaches this table's matching rows.
    pub strategy: JoinStrategy,
    /// Build-side pushdown: the access path over this table's own
    /// single-table conjuncts, when pre-filtering the build side was
    /// priced cheaper than the unfiltered strategy. `FullScan` means no
    /// pushdown — the whole right side is hashed/walked, and every
    /// join-side conjunct runs as a staged residual filter.
    pub build_access: AccessPath,
    /// Number of build-side hash partitions for a
    /// [`BuildHash`](JoinStrategy::BuildHash) step. `1` is the ordinary
    /// in-place build; `> 1` means the priced build footprint exceeded
    /// the memory budget's build share, so the executor hash-partitions
    /// the build side and keeps only one partition's map resident at a
    /// time (hot keys aside), merging matches back into the canonical
    /// ascending-RowId, outer-stream order.
    pub partitions: usize,
    /// Join keys whose MCV statistics mark them *hot* (≥
    /// [`HOT_KEY_FRACTION`] of the build side): when the build
    /// partitions, their buckets are built once into a small dedicated
    /// map that stays resident across all partitions, so the skewed
    /// majority of probes never waits on partition scheduling. Empty
    /// unless `partitions > 1`.
    pub hot_keys: Vec<Value>,
    /// The planner's estimated stream cardinality *after* this join
    /// executes — the running outer estimate of the strategy-assignment
    /// pass (`assign_join_strategies`) advanced past this step. `EXPLAIN`
    /// prints it per operator node so estimator drift is visible
    /// mid-plan, not only at the final result. `None` when the planner
    /// generation in use never priced the join (strategies disabled).
    pub estimated_rows: Option<f64>,
    /// Workers granted to this step's hash build
    /// (`PlanOptions::parallel_degree` over the rows entering the
    /// build). `1` is the serial build; `> 1` splits the in-place build
    /// into morsel-built partial maps merged in morsel order — or, when
    /// [`partitions`](Self::partitions) `> 1`, runs the (embarrassingly
    /// parallel) partitions on the worker pool. Either way the merged
    /// result is byte-identical to the serial build. Only meaningful
    /// for [`BuildHash`](JoinStrategy::BuildHash) steps.
    pub build_workers: usize,
}

/// The plan for one `SELECT`: access path, join order, staged filters.
#[derive(Debug, Clone)]
pub struct SelectPlan {
    /// Full column layout (base + joins), always in FROM order.
    pub layout: Layout,
    /// How base-table rows are produced.
    pub access: AccessPath,
    /// Base-only conjuncts evaluated before joins (excluding any the
    /// access path already guarantees).
    pub pushed: Vec<SqlExpr>,
    /// Joins in execution order (a permutation of FROM order).
    pub join_order: Vec<PlannedJoin>,
    /// `stages[k]` holds the conjuncts evaluated right after
    /// `join_order[k]` executes — the earliest level at which all their
    /// tables are bound.
    pub stages: Vec<Vec<SqlExpr>>,
    /// Estimated fraction of base rows surviving the access path.
    pub estimated_selectivity: f64,
    /// Estimated post-filter row count per FROM ordinal (drives the
    /// greedy join order).
    pub table_cards: Vec<f64>,
    /// Estimated base-table rows surviving the access path *and* every
    /// pushed filter — the planner's cardinality claim the differential
    /// estimator-accuracy harness holds against actual result sizes
    /// (q-error). Correlation-aware by default; the independence product
    /// under [`PlanOptions::independence_only`].
    pub estimated_base_rows: f64,
    /// Workers granted to the base-table fetch
    /// (`PlanOptions::parallel_degree` over the base table's rows).
    /// `1` lowers to the serial `Scan`/`IndexScan` leaf — today's exact
    /// code path; `> 1` lowers to the morsel-parallel `Exchange` leaf,
    /// which fuses the pushed filter into its workers and merges
    /// partials back into canonical ascending-RowId order.
    pub scan_workers: usize,
    /// Rows per morsel for this plan's parallel operators (from
    /// [`PlanOptions::morsel_rows`]; the executor clamps workers to the
    /// actual morsel count at run time).
    pub morsel_rows: usize,
}

impl SelectPlan {
    /// Conjuncts evaluated at join levels (flattened, for diagnostics).
    pub fn staged_count(&self) -> usize {
        self.stages.iter().map(Vec::len).sum()
    }

    /// Whether the join execution order differs from FROM order.
    pub fn joins_reordered(&self) -> bool {
        self.join_order
            .iter()
            .enumerate()
            .any(|(i, j)| j.from_idx != i)
    }

    /// Number of joins whose build side is pre-filtered by its own
    /// access path (see [`PlannedJoin::build_access`]). Used by tests and
    /// the differential tally to assert the pushdown path executes.
    pub fn build_pushdown_count(&self) -> usize {
        self.join_order
            .iter()
            .filter(|j| j.build_access != AccessPath::FullScan)
            .count()
    }

    /// Number of joins whose hash build runs partitioned under the
    /// memory budget (see [`PlannedJoin::partitions`]). Used by tests
    /// and the differential tally to assert the degradation path
    /// executes.
    pub fn partitioned_count(&self) -> usize {
        self.join_order.iter().filter(|j| j.partitions > 1).count()
    }

    /// Number of operators this plan runs on the worker pool: the
    /// parallel base fetch plus every parallel hash build. Used by the
    /// differential tally to assert the parallel operators actually
    /// execute under the `parallel` shape.
    pub fn parallel_count(&self) -> usize {
        usize::from(self.scan_workers > 1)
            + self
                .join_order
                .iter()
                .filter(|j| j.strategy == JoinStrategy::BuildHash && j.build_workers > 1)
                .count()
    }

    /// One-line summary, e.g.
    /// `index_and(genre&rating) sel=0.012 pushed=1 staged=2 order=[1:probe,0:hash+pf]`
    /// — `+pf` marks a join whose build side is pre-filtered by a
    /// pushdown access path, `+partN` a hash build running in `N`
    /// budget-bounded partitions (`+hot` when MCV hot keys ride the
    /// dedicated resident path).
    pub fn describe(&self) -> String {
        let order: Vec<String> = self
            .join_order
            .iter()
            .map(|j| {
                let pf = if j.build_access == AccessPath::FullScan {
                    ""
                } else {
                    "+pf"
                };
                let part = if j.partitions > 1 {
                    format!(
                        "+part{}{}",
                        j.partitions,
                        if j.hot_keys.is_empty() { "" } else { "+hot" }
                    )
                } else {
                    String::new()
                };
                format!("{}:{}{pf}{part}", j.from_idx, j.strategy.describe())
            })
            .collect();
        format!(
            "{} sel={:.3} pushed={} staged={} order=[{}]",
            self.access.describe(),
            self.estimated_selectivity,
            self.pushed.len(),
            self.staged_count(),
            order.join(",")
        )
    }
}

/// Split a WHERE tree at top-level `AND`s.
fn conjuncts(expr: &SqlExpr, out: &mut Vec<SqlExpr>) {
    match expr {
        SqlExpr::And(a, b) => {
            conjuncts(a, out);
            conjuncts(b, out);
        }
        other => out.push(other.clone()),
    }
}

/// The set of FROM ordinals referenced by `expr`, or `Err` when any
/// column fails to resolve (unknown or ambiguous) over the full layout.
fn referenced_ords(layout: &Layout, expr: &SqlExpr, out: &mut Vec<usize>) -> Result<()> {
    let mut push = |c: &ColumnRef| -> Result<()> {
        let slot = layout.resolve(c)?;
        let ord = layout.slots[slot].table_ord;
        if !out.contains(&ord) {
            out.push(ord);
        }
        Ok(())
    };
    match expr {
        SqlExpr::Cmp { column, .. }
        | SqlExpr::Like { column, .. }
        | SqlExpr::IsNull { column, .. } => push(column),
        SqlExpr::And(a, b) | SqlExpr::Or(a, b) => {
            referenced_ords(layout, a, out)?;
            referenced_ords(layout, b, out)
        }
        SqlExpr::Not(a) => referenced_ords(layout, a, out),
    }
}

/// A sargable candidate: conjunct index, column, op, coerced literal.
pub(crate) struct Sarg {
    pub conjunct: usize,
    pub column: String,
    pub op: CmpOp,
    pub value: Value,
}

/// Map a value onto the histogram's numeric axis (same convention as
/// [`crate::stats`]).
fn numeric_axis(v: &Value) -> Option<f64> {
    match v {
        Value::Date(d) => Some(d.day_number() as f64),
        other => other.as_float(),
    }
}

/// Selectivity of `column = value` as a fraction of **all** rows: the
/// MCV/uniform estimate (a fraction of non-null values) scaled by the
/// fill rate, since an equality never matches NULL.
fn eq_selectivity(stats: Option<&ColumnStats>, value: &Value) -> f64 {
    match stats {
        Some(s) => s.eq_selectivity(value) * s.fill_rate(),
        None => 1.0 / 3.0,
    }
}

/// Selectivity of a range probe as a fraction of **all** rows. The
/// histogram treats both bounds inclusively (it only sees the numeric
/// axis), so for a strict bound the boundary value's own equality mass is
/// subtracted — `x > hi` no longer prices like `x >= hi` on integer
/// columns — and the non-null histogram fraction is scaled by the fill
/// rate, since comparisons never match NULL.
fn range_selectivity(stats: Option<&ColumnStats>, lo: &Bound<Value>, hi: &Bound<Value>) -> f64 {
    let Some(s) = stats else { return 1.0 / 3.0 };
    let Some(h) = &s.histogram else {
        return 1.0 / 3.0 * s.fill_rate();
    };
    let lo_f = match lo {
        Bound::Included(v) | Bound::Excluded(v) => numeric_axis(v),
        Bound::Unbounded => Some(h.min),
    };
    let hi_f = match hi {
        Bound::Included(v) | Bound::Excluded(v) => numeric_axis(v),
        Bound::Unbounded => Some(h.max),
    };
    let mut est = match (lo_f, hi_f) {
        (Some(a), Some(b)) => h.range_selectivity(a, b),
        _ => return 1.0 / 3.0 * s.fill_rate(),
    };
    // Subtract only when the boundary lies inside the histogram's value
    // range — outside it the histogram already contributes no mass, and
    // `eq_selectivity`'s uniform estimate for an unseen value would
    // subtract phantom rows (e.g. `x > -1000` pricing below 1.0).
    let mut exclude_boundary = |b: &Bound<Value>| {
        if let Bound::Excluded(v) = b {
            if numeric_axis(v).is_some_and(|x| x >= h.min && x <= h.max) {
                est -= s.eq_selectivity(v);
            }
        }
    };
    exclude_boundary(lo);
    exclude_boundary(hi);
    (est.max(0.0) * s.fill_rate()).clamp(0.0, 1.0)
}

/// Per-column accumulator while folding sargable conjuncts into one
/// range probe.
struct ColumnBounds<'a> {
    column: &'a str,
    bounds: (Bound<Value>, Bound<Value>),
    used: Vec<usize>,
    /// Whether a NaN cell satisfies *every* folded conjunct: only
    /// non-strict comparisons against a float literal accept NaN under
    /// the engine's `partial_cmp` collapse (see
    /// [`IndexProbe::Range::include_nan`]).
    nan_ok: bool,
}

/// Whether a NaN cell passes `cell <op> value` under predicate
/// evaluation semantics.
fn nan_passes(op: CmpOp, value: &Value) -> bool {
    matches!(op, CmpOp::Ge | CmpOp::Le) && matches!(value, Value::Float(_))
}

/// Fold `op value` into an accumulating bound pair.
fn tighten(bounds: &mut (Bound<Value>, Bound<Value>), op: CmpOp, value: &Value) {
    let (lo, hi) = bounds;
    match op {
        CmpOp::Eq => {
            *lo = tighter_lo(lo, Bound::Included(value.clone()));
            *hi = tighter_hi(hi, Bound::Included(value.clone()));
        }
        CmpOp::Gt => *lo = tighter_lo(lo, Bound::Excluded(value.clone())),
        CmpOp::Ge => *lo = tighter_lo(lo, Bound::Included(value.clone())),
        CmpOp::Lt => *hi = tighter_hi(hi, Bound::Excluded(value.clone())),
        CmpOp::Le => *hi = tighter_hi(hi, Bound::Included(value.clone())),
        CmpOp::Ne => {}
    }
}

fn tighter_lo(current: &Bound<Value>, new: Bound<Value>) -> Bound<Value> {
    let newer = match (&current, &new) {
        (Bound::Unbounded, _) => true,
        (_, Bound::Unbounded) => false,
        (Bound::Included(c) | Bound::Excluded(c), Bound::Included(n) | Bound::Excluded(n)) => {
            match n.partial_cmp(c) {
                Some(std::cmp::Ordering::Greater) => true,
                Some(std::cmp::Ordering::Equal) => {
                    // Excluded is tighter than Included for a lower bound.
                    matches!(new, Bound::Excluded(_)) && matches!(current, Bound::Included(_))
                }
                _ => false,
            }
        }
    };
    if newer {
        new
    } else {
        current.clone()
    }
}

fn tighter_hi(current: &Bound<Value>, new: Bound<Value>) -> Bound<Value> {
    let newer = match (&current, &new) {
        (Bound::Unbounded, _) => true,
        (_, Bound::Unbounded) => false,
        (Bound::Included(c) | Bound::Excluded(c), Bound::Included(n) | Bound::Excluded(n)) => {
            match n.partial_cmp(c) {
                Some(std::cmp::Ordering::Less) => true,
                Some(std::cmp::Ordering::Equal) => {
                    matches!(new, Bound::Excluded(_)) && matches!(current, Bound::Included(_))
                }
                _ => false,
            }
        }
    };
    if newer {
        new
    } else {
        current.clone()
    }
}

/// Price every sargable candidate against `table` and assemble the access
/// path: the cheapest probe below [`INDEX_SELECTIVITY_THRESHOLD`] becomes
/// primary; with `multi_index`, further probes on *other* columns join the
/// intersection while estimated at or below
/// [`INTERSECT_SELECTIVITY_THRESHOLD`].
///
/// With statistics, equality is priced from the MCV list and ranges from
/// the histogram. Without (the typed `Table::select` path), equality uses
/// the exact hash-bucket size — an exact statistic maintained for free —
/// and ranges fall back to the uninformative 1/3 guess, which never
/// clears the thresholds.
///
/// With `correlation_aware`, joint statistics feed the intersection
/// decision: an equality probe whose tracked joint frequency against an
/// already-chosen equality shows it would shrink the intersection by less
/// than [`INTERSECT_SELECTIVITY_THRESHOLD`] is declined — fetching a
/// (near-)redundant RowId set and merging it is pure waste next to
/// filtering the primary probe's rows. The combined estimate then uses
/// joint frequencies and exponential backoff instead of the independence
/// product. Backoff alone never declines a probe: it widens the estimate
/// to hedge *unknown* correlation, while a decline needs the positive
/// evidence only joint statistics provide.
///
/// Returns `(path, estimated selectivity, consumed sarg indices)`.
pub(crate) fn choose_table_access(
    table: &Table,
    stats: Option<&TableStats>,
    sargs: &[Sarg],
    multi_index: bool,
    correlation_aware: bool,
) -> (AccessPath, f64, Vec<usize>) {
    if sargs.is_empty() || table.is_empty() {
        return (AccessPath::FullScan, 1.0, Vec::new());
    }
    let nrows = table.len() as f64;
    // (probe, estimated selectivity, consumed sarg indices)
    let mut candidates: Vec<(IndexProbe, f64, Vec<usize>)> = Vec::new();
    for (i, s) in sargs.iter().enumerate() {
        if s.op == CmpOp::Eq && table.has_index(&s.column) {
            let est = match stats {
                Some(st) => eq_selectivity(st.column(&s.column), &s.value),
                None => table.index_bucket_len(&s.column, &s.value).unwrap_or(0) as f64 / nrows,
            };
            candidates.push((
                IndexProbe::Eq {
                    column: s.column.clone(),
                    value: s.value.clone(),
                },
                est,
                vec![i],
            ));
        }
    }
    // Range probes over an ordered index, folding per-column bounds.
    let mut by_column: Vec<ColumnBounds> = Vec::new();
    for (i, s) in sargs.iter().enumerate() {
        if !table.has_range_index(&s.column) {
            continue;
        }
        // NaN cannot fold into ordered bounds (`partial_cmp` is `None`, so
        // `tighten` would silently drop it while the conjunct got marked
        // consumed). Leave such conjuncts as plain filters, where they
        // evaluate to false as before.
        if matches!(&s.value, Value::Float(f) if f.is_nan()) {
            continue;
        }
        match by_column.iter_mut().find(|b| b.column == s.column) {
            Some(b) => {
                tighten(&mut b.bounds, s.op, &s.value);
                b.used.push(i);
                b.nan_ok &= nan_passes(s.op, &s.value);
            }
            None => {
                let mut bounds = (Bound::Unbounded, Bound::Unbounded);
                tighten(&mut bounds, s.op, &s.value);
                by_column.push(ColumnBounds {
                    column: &s.column,
                    bounds,
                    used: vec![i],
                    nan_ok: nan_passes(s.op, &s.value),
                });
            }
        }
    }
    for b in by_column {
        let (lo, hi) = b.bounds;
        let est = match stats {
            Some(st) => range_selectivity(st.column(b.column), &lo, &hi),
            None => 1.0 / 3.0,
        };
        candidates.push((
            IndexProbe::Range {
                column: b.column.to_string(),
                lo,
                hi,
                include_nan: b.nan_ok,
            },
            est,
            b.used,
        ));
    }
    // Cheapest-first; the stable sort keeps candidate insertion order on
    // ties, so plans are deterministic.
    candidates.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
    let mut probes: Vec<IndexProbe> = Vec::new();
    let mut consumed: Vec<usize> = Vec::new();
    // Chosen probe estimates, with the (column, value) of equality probes
    // so the combined estimate can pair them through joint statistics.
    let mut chosen: Vec<(f64, Option<(String, Value)>)> = Vec::new();
    for (probe, est, used) in candidates {
        let threshold = if probes.is_empty() {
            INDEX_SELECTIVITY_THRESHOLD
        } else {
            INTERSECT_SELECTIVITY_THRESHOLD
        };
        if est > threshold {
            break;
        }
        // One probe per column: a second probe on the same column (e.g. a
        // hash and a range index both exist) cannot shrink the result.
        if probes.iter().any(|p| p.column() == probe.column()) {
            continue;
        }
        // Joint-stats redundancy check: decline a probe whose observed
        // conditional shrink against an already-chosen equality is too
        // small to pay for fetching its RowId set. (`continue`, not
        // `break` — a later candidate on an uncorrelated column may still
        // shrink the intersection.)
        if correlation_aware && !chosen.is_empty() {
            if let (IndexProbe::Eq { column, value }, Some(st)) = (&probe, stats) {
                let redundant = chosen.iter().any(|(pest, info)| {
                    info.as_ref().is_some_and(|(pc, pv)| {
                        st.joint_selectivity(pc, pv, column, value)
                            .is_some_and(|j| {
                                j / pest.max(f64::MIN_POSITIVE) > INTERSECT_SELECTIVITY_THRESHOLD
                            })
                    })
                });
                if redundant {
                    continue;
                }
            }
        }
        for u in used {
            if !consumed.contains(&u) {
                consumed.push(u);
            }
        }
        let eq_info = match &probe {
            IndexProbe::Eq { column, value } => Some((column.clone(), value.clone())),
            IndexProbe::Range { .. } => None,
        };
        chosen.push((est, eq_info));
        probes.push(probe);
        if !multi_index {
            break;
        }
    }
    if probes.is_empty() {
        return (AccessPath::FullScan, 1.0, Vec::new());
    }
    let combined = combine_probe_estimates(stats, &chosen, correlation_aware);
    consumed.sort_unstable();
    (AccessPath::Index(probes), combined, consumed)
}

/// Combined selectivity of the chosen probes: the independence product
/// when `corr` is off (the PR 4 estimator); otherwise equality pairs with
/// joint statistics contribute their observed joint frequency as a single
/// term and the terms combine with [`backoff_and`].
fn combine_probe_estimates(
    stats: Option<&TableStats>,
    chosen: &[(f64, Option<(String, Value)>)],
    corr: bool,
) -> f64 {
    if !corr || chosen.len() < 2 {
        return chosen.iter().map(|(est, _)| est).product();
    }
    let mut used = vec![false; chosen.len()];
    let mut terms: Vec<f64> = Vec::new();
    if let Some(st) = stats {
        for a in 0..chosen.len() {
            if used[a] {
                continue;
            }
            let Some((ca, va)) = &chosen[a].1 else {
                continue;
            };
            for b in a + 1..chosen.len() {
                if used[b] {
                    continue;
                }
                let Some((cb, vb)) = &chosen[b].1 else {
                    continue;
                };
                if let Some(s) = st.joint_selectivity(ca, va, cb, vb) {
                    terms.push(s);
                    used[a] = true;
                    used[b] = true;
                    break;
                }
            }
        }
    }
    for (i, (est, _)) in chosen.iter().enumerate() {
        if !used[i] {
            terms.push(*est);
        }
    }
    backoff_and(terms)
}

/// Combine AND'd conjunct selectivities with exponential backoff: sorted
/// ascending, `s₁ · s₂^½ · s₃^¼ · …`. The most selective conjunct counts
/// in full; each further conjunct contributes with a halved exponent, so
/// unknown correlation cannot compound into an arbitrarily over-confident
/// under-estimate the way the raw product does.
fn backoff_and(mut sels: Vec<f64>) -> f64 {
    sels.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let mut combined = 1.0f64;
    let mut exponent = 1.0f64;
    for s in sels {
        combined *= s.clamp(0.0, 1.0).powf(exponent);
        exponent /= 2.0;
    }
    combined.clamp(0.0, 1.0)
}

/// Flatten an `AND` tree into its conjuncts, borrowed.
fn and_parts<'e>(expr: &'e SqlExpr, out: &mut Vec<&'e SqlExpr>) {
    match expr {
        SqlExpr::And(a, b) => {
            and_parts(a, out);
            and_parts(b, out);
        }
        other => out.push(other),
    }
}

/// Estimated fraction of a single table's rows kept by the conjunction of
/// `parts`.
///
/// With `corr` off this is the PR 4 independence product. With it on:
///
/// 1. range conjuncts on the *same* column are folded into one bound
///    pair and priced as a single range term (`price > 5 AND price <= 9`
///    is one histogram probe, not a product of two); an equality on a
///    column that also carries range conjuncts folds into that bound
///    pair too — same dimension, not a correlation hazard;
/// 2. remaining equality pairs whose columns carry joint statistics are
///    priced from the observed joint frequency (one term for the pair);
/// 3. everything else is priced per conjunct;
/// 4. the terms are combined with [`backoff_and`].
fn and_selectivity(stats: &TableStats, layout: &Layout, parts: &[&SqlExpr], corr: bool) -> f64 {
    if !corr {
        return parts
            .iter()
            .map(|e| expr_selectivity(stats, layout, e, false))
            .product();
    }
    let resolve = |c: &ColumnRef| -> Option<&str> {
        let slot = layout.resolve(c).ok()?;
        Some(layout.slots[slot].column.as_str())
    };
    /// Per-column fold of range conjuncts into one bound pair.
    struct Fold<'a> {
        column: &'a str,
        bounds: (Bound<Value>, Bound<Value>),
        conjuncts: Vec<usize>,
    }
    let mut used = vec![false; parts.len()];
    let mut terms: Vec<f64> = Vec::new();
    // Equality leaves eligible for joint-stats pairing.
    let mut eqs: Vec<(usize, &str, &Value)> = Vec::new();
    // Foldable comparison leaves, accumulated per column.
    let mut folds: Vec<Fold> = Vec::new();
    for (i, e) in parts.iter().enumerate() {
        let SqlExpr::Cmp { column, op, value } = e else {
            continue;
        };
        if value.is_null() || matches!(value, Value::Float(f) if f.is_nan()) {
            continue; // NULL/NaN literals stay generic leaves.
        }
        let Some(col) = resolve(column) else { continue };
        match op {
            CmpOp::Eq => eqs.push((i, col, value)),
            CmpOp::Gt | CmpOp::Ge | CmpOp::Lt | CmpOp::Le => {
                match folds.iter_mut().find(|f| f.column == col) {
                    Some(f) => {
                        tighten(&mut f.bounds, *op, value);
                        f.conjuncts.push(i);
                    }
                    None => {
                        let mut bounds = (Bound::Unbounded, Bound::Unbounded);
                        tighten(&mut bounds, *op, value);
                        folds.push(Fold {
                            column: col,
                            bounds,
                            conjuncts: vec![i],
                        });
                    }
                }
            }
            CmpOp::Ne => {}
        }
    }
    // An equality on a column that also has range conjuncts is the same
    // dimension: fold it into the column's bound pair (backoff against
    // its own range would under-estimate a redundant predicate) and
    // withdraw it from joint pairing.
    eqs.retain(|&(i, col, value)| {
        if let Some(f) = folds.iter_mut().find(|f| f.column == col) {
            tighten(&mut f.bounds, CmpOp::Eq, value);
            f.conjuncts.push(i);
            false
        } else {
            true
        }
    });
    // Joint-stats pairing: an observed 2-D frequency replaces both
    // marginals with one honest term.
    for a in 0..eqs.len() {
        let (ia, ca, va) = eqs[a];
        if used[ia] {
            continue;
        }
        for &(ib, cb, vb) in &eqs[a + 1..] {
            if used[ib] || ca == cb {
                continue;
            }
            if let Some(s) = stats.joint_selectivity(ca, va, cb, vb) {
                terms.push(s);
                used[ia] = true;
                used[ib] = true;
                break;
            }
        }
    }
    // Per-column folded ranges: one histogram probe per column. Fold
    // conjuncts are disjoint from the paired equalities (folded
    // equalities were withdrawn from `eqs` above), so none is used yet.
    // Bounds collapsed to a single point (an equality tightened both
    // sides) price as that value's equality mass — the zero-width
    // histogram overlap would price it at 0.
    for f in folds {
        let term = match (&f.bounds.0, &f.bounds.1) {
            (Bound::Included(a), Bound::Included(b)) if a == b => {
                eq_selectivity(stats.column(f.column), a)
            }
            (lo, hi) => range_selectivity(stats.column(f.column), lo, hi),
        };
        terms.push(term);
        for i in f.conjuncts {
            used[i] = true;
        }
    }
    for (i, e) in parts.iter().enumerate() {
        if !used[i] {
            terms.push(expr_selectivity(stats, layout, e, true));
        }
    }
    backoff_and(terms)
}

/// Estimated fraction of a single table's rows kept by `expr`, from that
/// table's statistics. Composite shapes use the textbook combinators —
/// OR → inclusion–exclusion, NOT → complement — while AND defers to
/// [`and_selectivity`] (joint statistics, range folding and exponential
/// backoff when `corr` is set, the plain independence product otherwise);
/// leaves use the MCV/histogram estimates scaled by the column fill rate
/// (LIKE falls back to the 1/3 guess).
fn expr_selectivity(stats: &TableStats, layout: &Layout, expr: &SqlExpr, corr: bool) -> f64 {
    let col_stats = |c: &ColumnRef| -> Option<&ColumnStats> {
        let slot = layout.resolve(c).ok()?;
        stats.column(&layout.slots[slot].column)
    };
    match expr {
        SqlExpr::Cmp { column, op, value } => {
            let stats = col_stats(column);
            match op {
                CmpOp::Eq => eq_selectivity(stats, value),
                CmpOp::Ne => {
                    // `col <> v` keeps non-null rows that are not `v`;
                    // NULL comparisons never match, so the complement is
                    // of the fill rate, not of 1.
                    let fill = stats.map_or(1.0, ColumnStats::fill_rate);
                    (fill - eq_selectivity(stats, value)).clamp(0.0, 1.0)
                }
                CmpOp::Gt => {
                    range_selectivity(stats, &Bound::Excluded(value.clone()), &Bound::Unbounded)
                }
                CmpOp::Ge => {
                    range_selectivity(stats, &Bound::Included(value.clone()), &Bound::Unbounded)
                }
                CmpOp::Lt => {
                    range_selectivity(stats, &Bound::Unbounded, &Bound::Excluded(value.clone()))
                }
                CmpOp::Le => {
                    range_selectivity(stats, &Bound::Unbounded, &Bound::Included(value.clone()))
                }
            }
        }
        SqlExpr::Like { .. } => 1.0 / 3.0,
        SqlExpr::IsNull { column, negated } => {
            let null_frac = col_stats(column).map_or(0.1, ColumnStats::null_fraction);
            if *negated {
                1.0 - null_frac
            } else {
                null_frac
            }
        }
        SqlExpr::And(..) => {
            let mut parts = Vec::new();
            and_parts(expr, &mut parts);
            and_selectivity(stats, layout, &parts, corr)
        }
        SqlExpr::Or(a, b) => {
            let (sa, sb) = (
                expr_selectivity(stats, layout, a, corr),
                expr_selectivity(stats, layout, b, corr),
            );
            (sa + sb - sa * sb).clamp(0.0, 1.0)
        }
        SqlExpr::Not(a) => (1.0 - expr_selectivity(stats, layout, a, corr)).clamp(0.0, 1.0),
    }
}

/// Resolve every join's ON key in FROM-order semantics (identical errors
/// to the pre-planner executor, regardless of execution order).
fn resolve_joins(db: &Database, layout: &Layout, sel: &SelectStmt) -> Result<Vec<PlannedJoin>> {
    let mut out = Vec::with_capacity(sel.joins.len());
    for (ji, join) in sel.joins.iter().enumerate() {
        let (cur_ref, new_ref) = if join.left.table.as_deref().is_some_and(|t| t == join.table) {
            (&join.right, &join.left)
        } else {
            (&join.left, &join.right)
        };
        let left_slot = layout.resolve_prefix(cur_ref, ji + 1)?;
        let right = db.table(&join.table)?;
        let right_idx = right.schema().require_column(&new_ref.column)?;
        out.push(PlannedJoin {
            from_idx: ji,
            table_ord: ji + 1,
            table: join.table.clone(),
            left_slot,
            right_col: right.schema().columns()[right_idx].name.clone(),
            strategy: JoinStrategy::IndexProbe,
            build_access: AccessPath::FullScan,
            partitions: 1,
            hot_keys: Vec::new(),
            estimated_rows: None,
            build_workers: 1,
        });
    }
    Ok(out)
}

/// Build a sargable candidate from a `column <op> literal` conjunct, if
/// the shape qualifies: `op ≠ <>`, non-NULL literal that coerces to the
/// column type without becoming NULL. The single definition of
/// sargability shared by the base-table and build-side extractions, so
/// the two planners cannot drift apart.
fn sarg_from_cmp(
    column: &str,
    op: CmpOp,
    value: &Value,
    ty: DataType,
    conjunct: usize,
) -> Option<Sarg> {
    if op == CmpOp::Ne || value.is_null() {
        return None;
    }
    let coerced = value.coerce_to(ty).ok()?;
    if coerced.is_null() {
        return None;
    }
    Some(Sarg {
        conjunct,
        column: column.to_string(),
        op,
        value: coerced,
    })
}

/// Sargable candidates among the join-side conjuncts bound at a single
/// join table (`ords == [table_ord]`), extracted exactly like the base
/// table's (see [`sarg_from_cmp`]). [`Sarg::conjunct`] indexes into
/// `joinside`, so a consumed probe maps back to the conjunct it
/// guarantees.
fn joinside_sargs(
    layout: &Layout,
    joinside: &[(SqlExpr, Vec<usize>)],
    table_ord: usize,
) -> Vec<Sarg> {
    let mut sargs = Vec::new();
    for (i, (expr, ords)) in joinside.iter().enumerate() {
        if ords.as_slice() != [table_ord] {
            continue;
        }
        let SqlExpr::Cmp { column, op, value } = expr else {
            continue;
        };
        // Every column of this conjunct resolved to `table_ord` when the
        // ord set was computed, so resolution cannot fail here.
        let Ok(slot) = layout.resolve(column) else {
            continue;
        };
        let slot = &layout.slots[slot];
        sargs.extend(sarg_from_cmp(&slot.column, *op, value, slot.ty, i));
    }
    sargs
}

/// Pick a [`JoinStrategy`] (and optionally a build-side pushdown access
/// path) for every join step, walking the execution order with a running
/// estimate of the outer tuple count.
///
/// A hash index on the join column keeps today's per-key bucket probe.
/// Otherwise the one-pass strategies are priced per the module docs:
/// building a hash map costs [`HASH_BUILD_COST_FACTOR`]`× |right|` plus
/// one O(1) probe per outer tuple; merging costs one ordered-index walk
/// (`|right|`) plus sorting the outer keys (`outer × log₂ outer`), and is
/// only eligible when both sides of the ON key have an ordered index.
/// With `build_pushdown`, the join table's own access path over its
/// single-table conjuncts enters the pricing: a filtered build costs the
/// probe fetch (`≈ selectivity × |right|`) plus the build over the
/// filtered rows, and a filtered merge clamps its walk when one probe
/// bounds the join key itself. The cheapest variant wins; ties prefer
/// the pre-filtered variant, then the merge (no build allocation).
///
/// The outer estimate advances by the right side's average bucket size —
/// exact index distinct counts when available, [`TableStats`] otherwise —
/// scaled by the pushdown selectivity when the build side is
/// pre-filtered (still clamped at ≥1× growth).
///
/// Returns the indices of `joinside` conjuncts consumed by a pushdown
/// (their access path already guarantees them, so they must leave the
/// residual stages).
fn assign_join_strategies(
    db: &Database,
    layout: &Layout,
    join_order: &mut [PlannedJoin],
    mut outer_est: f64,
    joinside: &[(SqlExpr, Vec<usize>)],
    opts: &PlanOptions,
) -> Result<Vec<usize>> {
    let mut consumed = Vec::new();
    for pj in join_order.iter_mut() {
        let right = db.table(&pj.table)?;
        let nrows = right.len() as f64;
        // Rows actually entering the build/merge/probe after any
        // pushdown — feeds the outer-estimate advance below.
        let mut eff_rows = nrows;
        // Average bucket size of the join key: rows per distinct value.
        // Also the entry estimate for pricing a build map's footprint.
        let distinct = right
            .index_distinct(&pj.right_col)
            .or_else(|| right.range_index(&pj.right_col).map(RangeIndex::distinct))
            .map(|d| d as f64)
            .or_else(|| {
                db.with_stats(&pj.table, |s| {
                    s.column(&pj.right_col).map(|c| c.distinct as f64)
                })
                .ok()
                .flatten()
            })
            .unwrap_or(nrows);
        // Estimated bytes of a hash build over `rows` of this join key,
        // and whether that crosses the budget's build share (forcing the
        // partitioned path, priced as one extra pass over the build).
        let build_bytes =
            |rows: f64| join_build_bytes(rows.max(0.0) as usize, distinct.max(1.0) as usize);
        let partition_penalty = |rows: f64| match opts.memory_budget {
            Some(b) if build_partition_count(build_bytes(rows), b) > 1 => rows,
            _ => 0.0,
        };

        // Build-side pushdown candidate: the join table's own access
        // path over the conjuncts bound at this level.
        let mut pushdown: Option<(AccessPath, f64, Vec<usize>)> = None;
        if opts.build_pushdown && !right.is_empty() {
            let sargs = joinside_sargs(layout, joinside, pj.table_ord);
            if !sargs.is_empty() {
                let (access, est, used) = db.with_stats(&pj.table, |stats| {
                    choose_table_access(
                        right,
                        Some(stats),
                        &sargs,
                        opts.multi_index,
                        opts.correlation_aware,
                    )
                })?;
                if let AccessPath::Index(_) = access {
                    let joinside_used: Vec<usize> =
                        used.iter().map(|&u| sargs[u].conjunct).collect();
                    pushdown = Some((access, est, joinside_used));
                }
            }
        }

        pj.strategy = if right.has_index(&pj.right_col) {
            // Per-outer-tuple bucket probes touch only matching rows, so
            // probing itself is never beaten — but a selective pushdown
            // can still pay: fetching the filtered set once (≈ est ×
            // |right|) shrinks every probed bucket's intersection by the
            // same factor. Worth it exactly when the fetch undercuts the
            // probe work it saves.
            if let Some((_, est, _)) = &pushdown {
                let probe_cost = outer_est * (nrows / distinct.max(1.0));
                if est * nrows + est * probe_cost < probe_cost {
                    let (access, est, used) = pushdown.expect("checked above");
                    eff_rows = est * nrows;
                    pj.build_access = access;
                    consumed.extend(used);
                }
            }
            JoinStrategy::IndexProbe
        } else {
            let left_slot = &layout.slots[pj.left_slot];
            let both_ordered = right.has_range_index(&pj.right_col)
                && db
                    .table(&left_slot.table)
                    .is_ok_and(|t| t.has_range_index(&left_slot.column));
            let sort_cost = outer_est * outer_est.max(2.0).log2();
            let build_cost = HASH_BUILD_COST_FACTOR * nrows + outer_est + partition_penalty(nrows);
            let merge_cost = if both_ordered {
                nrows + sort_cost
            } else {
                f64::INFINITY
            };

            let (build_pd_cost, merge_pd_cost) = match &pushdown {
                Some((AccessPath::Index(probes), est, _)) => {
                    let filtered = est * nrows;
                    // Fetching the probes costs about the filtered
                    // cardinality (same convention as the intersection
                    // pricing in the module docs).
                    let fetch = filtered;
                    let build = fetch
                        + HASH_BUILD_COST_FACTOR * filtered
                        + outer_est
                        + partition_penalty(filtered);
                    let merge = if both_ordered {
                        // A probe on the join key clamps the ordered
                        // walk; otherwise every entry is still visited
                        // and only the buckets shrink.
                        let walk = if probes.iter().any(|p| p.column() == pj.right_col) {
                            filtered
                        } else {
                            nrows
                        };
                        fetch + walk + sort_cost
                    } else {
                        f64::INFINITY
                    };
                    (build, merge)
                }
                _ => (f64::INFINITY, f64::INFINITY),
            };

            // Cheapest variant wins; `<=` makes later candidates win
            // ties, so the preference order is merge+pushdown, then
            // build+pushdown, then plain merge, then plain build. Under
            // a tight budget the partition penalty shifts oversized
            // builds toward the merge (which materializes nothing).
            let mut choice = (JoinStrategy::BuildHash, false, build_cost);
            if merge_cost <= choice.2 {
                choice = (JoinStrategy::MergeRange, false, merge_cost);
            }
            if build_pd_cost <= choice.2 {
                choice = (JoinStrategy::BuildHash, true, build_pd_cost);
            }
            if merge_pd_cost <= choice.2 {
                choice = (JoinStrategy::MergeRange, true, merge_pd_cost);
            }
            if choice.1 {
                let (access, est, used) = pushdown.expect("pushdown variant chosen");
                eff_rows = est * nrows;
                pj.build_access = access;
                consumed.extend(used);
            }
            choice.0
        };

        // Budget-driven build shape: a hash build whose priced footprint
        // crosses the build share partitions, and the MCV-identified hot
        // keys of the join column ride the dedicated resident path.
        if pj.strategy == JoinStrategy::BuildHash {
            if let Some(budget) = opts.memory_budget {
                let parts = build_partition_count(build_bytes(eff_rows), budget);
                if parts > 1 {
                    pj.partitions = parts;
                    pj.hot_keys = hot_join_keys(db, &pj.table, &pj.right_col, nrows)?;
                }
            }
            // Degree of build parallelism, from the rows actually
            // entering the build (the pushdown estimate when one was
            // chosen, the exact table size otherwise). The executor
            // clamps to the actual morsel/partition count at run time.
            pj.build_workers = opts.parallel_degree(eff_rows.max(0.0) as usize);
        }
        outer_est *= (eff_rows / distinct.max(1.0)).max(1.0);
        pj.estimated_rows = Some(outer_est);
    }
    Ok(consumed)
}

/// The join keys of `table.column` whose MCV-tracked buckets hold at
/// least [`HOT_KEY_FRACTION`] of the table's rows — the heavy hitters a
/// partitioned build pins in its always-resident map. The MCV list is
/// sorted by descending count, so the first [`HOT_KEY_LIMIT`] qualifying
/// entries are the heaviest. NULL/NaN never join and are skipped.
fn hot_join_keys(db: &Database, table: &str, column: &str, rows: f64) -> Result<Vec<Value>> {
    db.with_stats(table, |stats| {
        stats.column(column).map_or_else(Vec::new, |c| {
            c.most_common
                .iter()
                .filter(|(v, n)| !v.is_excluded_join_key() && *n as f64 >= HOT_KEY_FRACTION * rows)
                .take(HOT_KEY_LIMIT)
                .map(|(v, _)| v.clone())
                .collect()
        })
    })
}

/// Greedily order joins smallest-estimated-table-first, restricted to
/// joins whose bound-side key is already in the stream. The remaining
/// join with the smallest FROM index is always eligible (its key resolves
/// within the FROM prefix, and all earlier tables are either bound or
/// themselves remaining with smaller index — contradiction), so the
/// greedy pass always terminates with a complete order.
fn greedy_join_order(joins: Vec<PlannedJoin>, layout: &Layout, cards: &[f64]) -> Vec<PlannedJoin> {
    let mut remaining = joins;
    let mut order = Vec::with_capacity(remaining.len());
    let mut bound = vec![false; layout.tables];
    bound[0] = true;
    while !remaining.is_empty() {
        let mut best: Option<usize> = None;
        for (i, j) in remaining.iter().enumerate() {
            let left_ord = layout.slots[j.left_slot].table_ord;
            if !bound[left_ord] {
                continue;
            }
            // Strict `<` keeps the first-seen candidate on ties, and
            // `remaining` preserves FROM order, so ties break toward the
            // smaller FROM index — deterministic without an explicit
            // tie-break clause.
            let better = match best {
                None => true,
                Some(b) => cards[j.table_ord] < cards[remaining[b].table_ord],
            };
            if better {
                best = Some(i);
            }
        }
        let pick = best.expect("FROM-order continuation is always eligible");
        let j = remaining.remove(pick);
        bound[j.table_ord] = true;
        order.push(j);
    }
    order
}

/// Plan a `SELECT` with the default (fully enabled) optimizer.
pub fn plan_select(db: &Database, sel: &SelectStmt) -> Result<SelectPlan> {
    plan_select_with(db, sel, &PlanOptions::default())
}

/// Plan a `SELECT`: partition the WHERE clause, choose the access path,
/// order the joins and assign each conjunct its evaluation stage.
pub fn plan_select_with(db: &Database, sel: &SelectStmt, opts: &PlanOptions) -> Result<SelectPlan> {
    let layout = Layout::build(db, sel)?;
    let base = db.table(&sel.table)?;
    let schema = base.schema();
    let joins = resolve_joins(db, &layout, sel)?;
    let njoins = joins.len();

    let mut all = Vec::new();
    if let Some(expr) = &sel.where_clause {
        conjuncts(expr, &mut all);
    }

    // Classify each conjunct by the FROM ordinals it references. An
    // unresolvable (unknown or ambiguous) column anywhere in the WHERE
    // clause disables pushdown, index use and reordering entirely: the
    // seed executor raised the resolution error lazily, per evaluated
    // joined row, so any filtering before the join could change *whether*
    // the error surfaces at all. The conservative plan evaluates every
    // conjunct post-join in original order — byte-identical behaviour,
    // including errors.
    let mut ord_sets: Vec<Vec<usize>> = Vec::with_capacity(all.len());
    let mut conservative = false;
    for expr in &all {
        let mut ords = Vec::new();
        if referenced_ords(&layout, expr, &mut ords).is_err() {
            conservative = true;
            break;
        }
        ord_sets.push(ords);
    }
    if conservative {
        let mut stages = vec![Vec::new(); njoins];
        let mut pushed = Vec::new();
        if njoins == 0 {
            // With no joins the post-join stream *is* the base stream;
            // compile-time resolution failures fall back to deferred
            // per-row evaluation, preserving lazy error order.
            pushed = all;
        } else {
            stages[njoins - 1] = all;
        }
        let table_cards = table_row_counts(db, &layout);
        // Conservatism is about WHERE-clause error semantics; the join
        // strategy is orthogonal, so unindexed joins still avoid the
        // quadratic fallback. No build-side pushdown though: an
        // unresolvable WHERE clause means no conjunct was classified, so
        // there is nothing safe to push (`joinside` is empty).
        let mut join_order = joins;
        if opts.join_strategies {
            assign_join_strategies(
                db,
                &layout,
                &mut join_order,
                table_cards[0].max(1.0),
                &[],
                opts,
            )?;
        }
        let estimated_base_rows = table_cards[0];
        return Ok(SelectPlan {
            layout,
            access: AccessPath::FullScan,
            pushed,
            join_order,
            stages,
            estimated_selectivity: 1.0,
            table_cards,
            estimated_base_rows,
            scan_workers: opts.parallel_degree(base.len()),
            morsel_rows: opts.morsel_rows,
        });
    }

    let mut pushed: Vec<SqlExpr> = Vec::new();
    let mut joinside: Vec<(SqlExpr, Vec<usize>)> = Vec::new();
    let mut sargs: Vec<Sarg> = Vec::new();
    for (expr, ords) in all.into_iter().zip(ord_sets) {
        if ords.iter().any(|&o| o != 0) {
            joinside.push((expr, ords));
            continue;
        }
        if let SqlExpr::Cmp { column, op, value } = &expr {
            if let Some(idx) = schema.column_index(&column.column) {
                let ty = schema.columns()[idx].ty;
                sargs.extend(sarg_from_cmp(&column.column, *op, value, ty, pushed.len()));
            }
        }
        pushed.push(expr);
    }

    // Price the sargable candidates with cached statistics.
    let (access, estimated_selectivity, consumed_sargs) = if sargs.is_empty() || base.is_empty() {
        (AccessPath::FullScan, 1.0, Vec::new())
    } else {
        db.with_stats(&sel.table, |stats| {
            choose_table_access(
                base,
                Some(stats),
                &sargs,
                opts.multi_index,
                opts.correlation_aware,
            )
        })?
    };
    let consumed: Vec<usize> = consumed_sargs.iter().map(|&i| sargs[i].conjunct).collect();

    // Honest post-filter estimate of the base table, over *all* base
    // conjuncts (consumed and residual): feeds `estimated_base_rows`, the
    // join-order cards and the join-strategy outer estimate. When every
    // conjunct was consumed, the access-path estimate already covers them
    // (including joint pairing/backoff), so the extra stats pass is
    // skipped — point-lookup planning stays cheap.
    let mut base_sel = estimated_selectivity;
    if !base.is_empty() && pushed.len() > consumed.len() {
        db.with_stats(&sel.table, |stats| {
            if opts.correlation_aware {
                let parts: Vec<&SqlExpr> = pushed.iter().collect();
                base_sel = and_selectivity(stats, &layout, &parts, true);
            } else {
                // The PR 4 formula: access estimate times the residual
                // conjuncts' independence product.
                for (i, e) in pushed.iter().enumerate() {
                    if !consumed.contains(&i) {
                        base_sel *= expr_selectivity(stats, &layout, e, false);
                    }
                }
            }
        })?;
    }
    let estimated_base_rows = base.len() as f64 * base_sel.clamp(0.0, 1.0);

    // Drop consumed conjuncts (the access path already guarantees them).
    let pushed: Vec<SqlExpr> = pushed
        .into_iter()
        .enumerate()
        .filter(|(i, _)| !consumed.contains(i))
        .map(|(_, e)| e)
        .collect();

    // Estimated post-filter cardinality per FROM table: the base estimate
    // above, and row count times the selectivity of the single-table
    // staged conjuncts for join sides. Join cards only drive the greedy
    // join order, so single-join and join-free plans skip that pass.
    let reorder = opts.reorder_joins && njoins > 1;
    let mut table_cards = table_row_counts(db, &layout);
    table_cards[0] = estimated_base_rows;
    if reorder {
        for j in &joins {
            let single: Vec<&SqlExpr> = joinside
                .iter()
                .filter(|(_, ords)| ords.as_slice() == [j.table_ord])
                .map(|(e, _)| e)
                .collect();
            if single.is_empty() || db.table(&j.table)?.is_empty() {
                continue;
            }
            let mut sel_est = 1.0f64;
            db.with_stats(&j.table, |stats| {
                sel_est = and_selectivity(stats, &layout, &single, opts.correlation_aware);
            })?;
            table_cards[j.table_ord] *= sel_est.clamp(0.0, 1.0);
        }
    }

    let mut join_order = if reorder {
        greedy_join_order(joins, &layout, &table_cards)
    } else {
        joins
    };
    let mut consumed_joinside: Vec<usize> = Vec::new();
    if opts.join_strategies && njoins > 0 {
        // Outer estimate entering the first join: base rows surviving the
        // access path and pushed filters (under the frozen independence
        // estimator without reordering, only the access path — the PR 4
        // formula).
        let outer0 = if opts.correlation_aware || reorder {
            estimated_base_rows
        } else {
            base.len() as f64 * estimated_selectivity
        };
        consumed_joinside = assign_join_strategies(
            db,
            &layout,
            &mut join_order,
            outer0.max(1.0),
            &joinside,
            opts,
        )?;
    }
    // Drop the conjuncts a build-side pushdown consumed: the join's
    // filtered access path already guarantees them, so evaluating them
    // again as residual filters would be pure waste.
    let joinside: Vec<(SqlExpr, Vec<usize>)> = joinside
        .into_iter()
        .enumerate()
        .filter(|(i, _)| !consumed_joinside.contains(i))
        .map(|(_, e)| e)
        .collect();

    // Assign every join-side conjunct its evaluation stage: the earliest
    // point in execution order at which all referenced tables are bound.
    let mut stages: Vec<Vec<SqlExpr>> = vec![Vec::new(); njoins];
    let mut bound_after: Vec<Vec<usize>> = Vec::with_capacity(njoins);
    let mut bound = vec![0usize];
    for j in &join_order {
        bound.push(j.table_ord);
        bound_after.push(bound.clone());
    }
    for (expr, ords) in joinside {
        let stage = if opts.join_pushdown {
            bound_after
                .iter()
                .position(|b| ords.iter().all(|o| b.contains(o)))
                .expect("all ords bound after the last join")
        } else {
            njoins - 1
        };
        stages[stage].push(expr);
    }

    Ok(SelectPlan {
        layout,
        access,
        pushed,
        join_order,
        stages,
        estimated_selectivity,
        table_cards,
        estimated_base_rows,
        scan_workers: opts.parallel_degree(base.len()),
        morsel_rows: opts.morsel_rows,
    })
}

/// Live row count per FROM ordinal (one catalog lookup per table, not
/// per slot — slots are grouped by ordinal).
fn table_row_counts(db: &Database, layout: &Layout) -> Vec<f64> {
    let mut counts = vec![0.0; layout.tables];
    let mut next_ord = 0usize;
    for slot in &layout.slots {
        if slot.table_ord == next_ord {
            counts[next_ord] = db.table(&slot.table).map_or(0.0, |t| t.len() as f64);
            next_ord += 1;
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sql::parser::parse_statement;
    use crate::sql::Statement;
    use crate::{row, Database, TableSchema};

    fn plan(db: &Database, sql: &str) -> SelectPlan {
        let Statement::Select(sel) = parse_statement(sql).unwrap() else {
            panic!("not a select")
        };
        plan_select(db, &sel).unwrap()
    }

    /// movies with a PK hash index on movie_id, a hash index on genre
    /// (3 skewed values) and a range index on rating.
    fn db() -> Database {
        let mut db = Database::new();
        db.create_table(
            TableSchema::builder("movie")
                .column("movie_id", crate::DataType::Int)
                .column("title", crate::DataType::Text)
                .column("genre", crate::DataType::Text)
                .nullable_column("rating", crate::DataType::Float)
                .primary_key(&["movie_id"])
                .build()
                .unwrap(),
        )
        .unwrap();
        db.create_table(
            TableSchema::builder("screening")
                .column("screening_id", crate::DataType::Int)
                .column("movie_id", crate::DataType::Int)
                .column("price", crate::DataType::Float)
                .primary_key(&["screening_id"])
                .foreign_key("movie_id", "movie", "movie_id")
                .build()
                .unwrap(),
        )
        .unwrap();
        {
            let t = db.table_mut("movie").unwrap();
            t.create_index("genre").unwrap();
            t.create_range_index("rating").unwrap();
        }
        for i in 0..100i64 {
            // genre: 80% Drama, 15% Action, 5% Noir.
            let genre = if i % 20 == 19 {
                "Noir"
            } else if i % 20 >= 16 {
                "Action"
            } else {
                "Drama"
            };
            db.insert(
                "movie",
                row![i, format!("M{i}"), genre, (i % 50) as f64 / 5.0],
            )
            .unwrap();
        }
        for i in 0..50i64 {
            db.insert("screening", row![i, i % 100, 10.0 + (i % 7) as f64])
                .unwrap();
        }
        db
    }

    /// Adds a tiny `award` table referencing `movie` so three-table joins
    /// (star shape: both joins hang off the base) can be planned.
    fn db_with_awards() -> Database {
        let mut db = db();
        db.create_table(
            TableSchema::builder("award")
                .column("award_id", crate::DataType::Int)
                .column("movie_id", crate::DataType::Int)
                .primary_key(&["award_id"])
                .foreign_key("movie_id", "movie", "movie_id")
                .build()
                .unwrap(),
        )
        .unwrap();
        for i in 0..5i64 {
            db.insert("award", row![i, i * 7]).unwrap();
        }
        db
    }

    #[test]
    fn pk_equality_uses_hash_index() {
        let db = db();
        let p = plan(&db, "SELECT * FROM movie WHERE movie_id = 42");
        assert_eq!(p.access.describe(), "index_eq(movie_id)");
        assert!(
            p.estimated_selectivity <= 0.02,
            "sel {}",
            p.estimated_selectivity
        );
        assert!(p.pushed.is_empty(), "eq conjunct must be consumed");
        assert_eq!(p.staged_count(), 0);
    }

    #[test]
    fn selective_genre_uses_index_common_genre_scans() {
        let db = db();
        let rare = plan(&db, "SELECT * FROM movie WHERE genre = 'Noir'");
        assert_eq!(rare.access.describe(), "index_eq(genre)");
        // 80% of rows are Drama: a scan beats the index.
        let common = plan(&db, "SELECT * FROM movie WHERE genre = 'Drama'");
        assert_eq!(common.access.describe(), "scan");
        assert_eq!(common.pushed.len(), 1, "filter still applied");
    }

    #[test]
    fn range_predicate_uses_range_index_and_folds_bounds() {
        let db = db();
        let p = plan(
            &db,
            "SELECT * FROM movie WHERE rating > 8.0 AND rating <= 9.0",
        );
        assert_eq!(p.access.describe(), "index_range(rating)");
        assert!(p.pushed.is_empty(), "both bounds folded into the probe");
        let AccessPath::Index(probes) = &p.access else {
            panic!()
        };
        let IndexProbe::Range { lo, hi, .. } = &probes[0] else {
            panic!()
        };
        assert_eq!(*lo, Bound::Excluded(Value::Float(8.0)));
        assert_eq!(*hi, Bound::Included(Value::Float(9.0)));
    }

    #[test]
    fn multi_conjunct_intersects_multiple_indexes() {
        let db = db();
        let p = plan(
            &db,
            "SELECT * FROM movie WHERE genre = 'Noir' AND rating > 8.0 AND rating <= 9.0",
        );
        assert_eq!(p.access.describe(), "index_and(genre&rating)");
        assert!(
            p.pushed.is_empty(),
            "all three conjuncts consumed by the intersection, got {:?}",
            p.pushed
        );
        // Combined estimate is the product of the probe estimates.
        assert!(
            p.estimated_selectivity < 0.05,
            "sel {}",
            p.estimated_selectivity
        );
    }

    #[test]
    fn intersection_orders_probes_cheapest_first() {
        let db = db();
        let p = plan(
            &db,
            "SELECT * FROM movie WHERE rating > 8.0 AND rating <= 9.0 AND genre = 'Noir'",
        );
        let AccessPath::Index(probes) = &p.access else {
            panic!("expected intersection, got {}", p.access.describe())
        };
        // genre='Noir' (5%) is cheaper than the ~10% rating band and must
        // lead the probe list regardless of conjunct order in the SQL.
        assert_eq!(probes[0].column(), "genre");
        assert_eq!(probes[1].column(), "rating");
    }

    #[test]
    fn poorly_selective_conjunct_stays_a_filter() {
        let db = db();
        // movie_id = 7 is a 1% point probe; genre = 'Drama' keeps 80% of
        // the table — fetching its RowId set would cost more than
        // filtering the point probe's single row.
        let p = plan(
            &db,
            "SELECT * FROM movie WHERE movie_id = 7 AND genre = 'Drama'",
        );
        assert_eq!(p.access.describe(), "index_eq(movie_id)");
        assert_eq!(p.pushed.len(), 1, "Drama conjunct must stay a filter");
    }

    #[test]
    fn wide_range_falls_back_to_scan() {
        let db = db();
        let p = plan(&db, "SELECT * FROM movie WHERE rating >= 0.0");
        assert_eq!(p.access.describe(), "scan");
    }

    #[test]
    fn unindexed_column_scans() {
        let db = db();
        let p = plan(&db, "SELECT * FROM movie WHERE title = 'M7'");
        assert_eq!(p.access.describe(), "scan");
        assert_eq!(p.pushed.len(), 1);
    }

    #[test]
    fn disjunction_is_not_sargable() {
        let db = db();
        let p = plan(
            &db,
            "SELECT * FROM movie WHERE movie_id = 1 OR movie_id = 2",
        );
        assert_eq!(p.access.describe(), "scan");
        assert_eq!(p.pushed.len(), 1);
    }

    #[test]
    fn base_conjunct_pushed_joined_conjunct_staged() {
        let db = db();
        let p = plan(
            &db,
            "SELECT movie.title FROM movie \
             JOIN screening ON screening.movie_id = movie.movie_id \
             WHERE movie.movie_id = 3 AND screening.price > 11.0",
        );
        assert_eq!(p.access.describe(), "index_eq(movie_id)");
        assert!(p.pushed.is_empty());
        assert_eq!(p.staged_count(), 1, "price predicate runs at join level");
        assert_eq!(p.stages[0].len(), 1);
    }

    #[test]
    fn joins_ordered_by_estimated_cardinality() {
        let db = db_with_awards();
        // FROM order puts the 50-row screening join before the 5-row
        // award join; the greedy order flips them.
        let p = plan(
            &db,
            "SELECT movie.title FROM movie \
             JOIN screening ON screening.movie_id = movie.movie_id \
             JOIN award ON award.movie_id = movie.movie_id",
        );
        assert_eq!(p.join_order.len(), 2);
        assert_eq!(p.join_order[0].table, "award");
        assert_eq!(p.join_order[1].table, "screening");
        assert!(p.joins_reordered());
        assert!(p.table_cards[2] < p.table_cards[1]);
    }

    #[test]
    fn filtered_join_side_reorders_ahead() {
        let db = db_with_awards();
        // award(5) still smallest, but a selective filter on screening
        // (price band keeps ~1/7) must shrink screening's estimate below
        // its raw 50 rows.
        let p = plan(
            &db,
            "SELECT movie.title FROM movie \
             JOIN screening ON screening.movie_id = movie.movie_id \
             JOIN award ON award.movie_id = movie.movie_id \
             WHERE screening.price = 12.0",
        );
        assert!(p.table_cards[1] < 50.0, "cards {:?}", p.table_cards);
        // The price conjunct is staged at screening's level, wherever
        // that lands in execution order.
        let screening_step = p
            .join_order
            .iter()
            .position(|j| j.table == "screening")
            .unwrap();
        assert_eq!(p.stages[screening_step].len(), 1);
    }

    #[test]
    fn chained_join_respects_binding_constraint() {
        let mut db = db_with_awards();
        // A table referencing screening (not movie): the chain forces
        // review after screening no matter how small review is.
        db.create_table(
            TableSchema::builder("review")
                .column("review_id", crate::DataType::Int)
                .column("screening_id", crate::DataType::Int)
                .primary_key(&["review_id"])
                .foreign_key("screening_id", "screening", "screening_id")
                .build()
                .unwrap(),
        )
        .unwrap();
        db.insert("review", row![0, 0]).unwrap();
        let p = plan(
            &db,
            "SELECT movie.title FROM movie \
             JOIN screening ON screening.movie_id = movie.movie_id \
             JOIN review ON review.screening_id = screening.screening_id",
        );
        let screening_step = p
            .join_order
            .iter()
            .position(|j| j.table == "screening")
            .unwrap();
        let review_step = p
            .join_order
            .iter()
            .position(|j| j.table == "review")
            .unwrap();
        assert!(
            screening_step < review_step,
            "review joins on screening and must execute after it"
        );
    }

    #[test]
    fn pr1_options_disable_reordering_and_staging() {
        let db = db_with_awards();
        let Statement::Select(sel) = parse_statement(
            "SELECT movie.title FROM movie \
             JOIN screening ON screening.movie_id = movie.movie_id \
             JOIN award ON award.movie_id = movie.movie_id \
             WHERE screening.price > 11.0",
        )
        .unwrap() else {
            unreachable!()
        };
        let p = plan_select_with(&db, &sel, &PlanOptions::single_access_path()).unwrap();
        assert!(!p.joins_reordered());
        assert!(p.stages[0].is_empty(), "no pushdown: final stage only");
        assert_eq!(p.stages[1].len(), 1);
    }

    #[test]
    fn ambiguous_unqualified_column_is_not_pushed() {
        let db = db();
        // `movie_id` exists in both tables: resolution over the joined
        // layout is ambiguous, so the conjunct must stay at the final
        // stage (the executor surfaces the error lazily, as before the
        // planner).
        let p = plan(
            &db,
            "SELECT movie.title FROM movie \
             JOIN screening ON screening.movie_id = movie.movie_id \
             WHERE movie_id = 3",
        );
        assert_eq!(p.access.describe(), "scan");
        assert!(!p.joins_reordered());
        assert_eq!(p.stages.last().unwrap().len(), 1);
    }

    #[test]
    fn contradictory_equalities_consume_only_chosen() {
        let db = db();
        let p = plan(
            &db,
            "SELECT * FROM movie WHERE movie_id = 1 AND movie_id = 2",
        );
        assert_eq!(p.access.describe(), "index_eq(movie_id)");
        // One equality drives the probe (one probe per column), the other
        // must remain a filter.
        assert_eq!(p.pushed.len(), 1);
    }

    #[test]
    fn empty_table_scans() {
        let mut db = Database::new();
        db.create_table(
            TableSchema::builder("t")
                .column("id", crate::DataType::Int)
                .primary_key(&["id"])
                .build()
                .unwrap(),
        )
        .unwrap();
        let p = plan(&db, "SELECT * FROM t WHERE id = 1");
        assert_eq!(p.access.describe(), "scan");
    }

    #[test]
    fn nan_literal_is_not_sargable_for_ranges() {
        let db = db();
        // 'NaN' coerces to Float(NaN) against the rating column; it must
        // stay a filter (evaluating to false), never a consumed bound.
        let p = plan(
            &db,
            "SELECT * FROM movie WHERE rating > 9.0 AND rating > 'NaN'",
        );
        match &p.access {
            AccessPath::Index(_) => {
                assert_eq!(p.pushed.len(), 1, "NaN conjunct must stay pushed");
            }
            AccessPath::FullScan => {
                assert_eq!(p.pushed.len(), 2);
            }
        }
    }

    /// 1600 rows with a hash-indexed 16-value `city` column that fully
    /// determines a hash-indexed 8-value `country` column (two cities per
    /// country) — the correlated pair joint statistics are built for.
    fn correlated_db() -> Database {
        let mut db = Database::new();
        db.create_table(
            TableSchema::builder("shop")
                .column("id", crate::DataType::Int)
                .column("city", crate::DataType::Text)
                .column("country", crate::DataType::Text)
                .primary_key(&["id"])
                .build()
                .unwrap(),
        )
        .unwrap();
        {
            let t = db.table_mut("shop").unwrap();
            t.create_index("city").unwrap();
            t.create_index("country").unwrap();
        }
        for i in 0..1600i64 {
            let c = i % 16;
            db.insert("shop", row![i, format!("C{c}"), format!("K{}", c / 2)])
                .unwrap();
        }
        db
    }

    #[test]
    fn joint_stats_decline_redundant_intersection_probe() {
        let db = correlated_db();
        // city = 'C3' (6.25%) fully implies country = 'K1': fetching the
        // 12.5% country bucket shrinks the intersection by nothing.
        let sql = "SELECT id FROM shop WHERE city = 'C3' AND country = 'K1'";
        let p = plan(&db, sql);
        assert_eq!(p.access.describe(), "index_eq(city)", "{}", p.describe());
        assert_eq!(p.pushed.len(), 1, "declined conjunct stays a filter");
        // The estimate is the honest joint frequency, not the 0.78%
        // independence product.
        assert!(
            (p.estimated_base_rows - 100.0).abs() < 5.0,
            "base rows {}",
            p.estimated_base_rows
        );
        // The frozen PR 4 estimator still intersects and under-estimates.
        let Statement::Select(sel) = parse_statement(sql).unwrap() else {
            unreachable!()
        };
        let indep = plan_select_with(&db, &sel, &PlanOptions::independence_only()).unwrap();
        assert_eq!(indep.access.describe(), "index_and(city&country)");
        assert!(
            indep.estimated_base_rows < 15.0,
            "independence product under-estimates, got {}",
            indep.estimated_base_rows
        );
    }

    #[test]
    fn contradictory_pair_still_intersects() {
        let db = correlated_db();
        // city = 'C3' belongs to 'K1'; 'K7' never co-occurs with it. The
        // joint estimate is near zero, so the intersection (which empties
        // immediately) is kept and the combined estimate collapses.
        let p = plan(
            &db,
            "SELECT id FROM shop WHERE city = 'C3' AND country = 'K7'",
        );
        assert_eq!(
            p.access.describe(),
            "index_and(city&country)",
            "{}",
            p.describe()
        );
        assert!(
            p.estimated_base_rows < 2.0,
            "provably-disjoint pair, got {}",
            p.estimated_base_rows
        );
    }

    #[test]
    fn backoff_dampens_uncorrelated_conjunct_product() {
        let db = db();
        // genre (3 distinct) and rating (50 distinct): no joint stats, so
        // the pair combines with exponential backoff instead of the raw
        // product.
        let s_noir = plan(&db, "SELECT * FROM movie WHERE genre = 'Noir'").estimated_selectivity;
        let s_band = plan(
            &db,
            "SELECT * FROM movie WHERE rating > 8.0 AND rating <= 9.0",
        )
        .estimated_selectivity;
        let sql = "SELECT * FROM movie WHERE genre = 'Noir' AND rating > 8.0 AND rating <= 9.0";
        let p = plan(&db, sql);
        let expect = s_noir.min(s_band) * s_noir.max(s_band).sqrt();
        assert!(
            (p.estimated_selectivity - expect).abs() < 1e-9,
            "backoff combination: got {}, want {expect}",
            p.estimated_selectivity
        );
        let Statement::Select(sel) = parse_statement(sql).unwrap() else {
            unreachable!()
        };
        let indep = plan_select_with(&db, &sel, &PlanOptions::independence_only()).unwrap();
        assert!(
            (indep.estimated_selectivity - s_noir * s_band).abs() < 1e-9,
            "independence product frozen: got {}",
            indep.estimated_selectivity
        );
        assert!(p.estimated_selectivity > indep.estimated_selectivity);
    }

    #[test]
    fn same_column_equality_folds_into_range_not_backoff() {
        let db = db();
        // rating = 8.0 AND rating > 7.0 is fully redundant: the estimate
        // must collapse to the equality's own mass, not backoff the two
        // same-dimension conjuncts against each other.
        let eq_only = plan(&db, "SELECT * FROM movie WHERE rating = 8.0").estimated_base_rows;
        let redundant = plan(
            &db,
            "SELECT * FROM movie WHERE rating = 8.0 AND rating > 7.0",
        )
        .estimated_base_rows;
        assert!(
            (redundant - eq_only).abs() < 1e-9,
            "redundant range must not discount the equality: {redundant} vs {eq_only}"
        );
    }

    #[test]
    fn excluded_bound_outside_histogram_subtracts_nothing() {
        let mut db = Database::new();
        db.create_table(
            TableSchema::builder("t")
                .column("id", crate::DataType::Int)
                .column("x", crate::DataType::Int)
                .primary_key(&["id"])
                .build()
                .unwrap(),
        )
        .unwrap();
        db.table_mut("t").unwrap().create_range_index("x").unwrap();
        for i in 0..100i64 {
            db.insert("t", row![i, i]).unwrap();
        }
        // The boundary -1000 holds no mass: `x > -1000` keeps everything
        // and must not subtract a phantom unseen-value estimate.
        let p = plan(&db, "SELECT id FROM t WHERE x > -1000");
        assert!(
            (p.estimated_base_rows - 100.0).abs() < 1e-6,
            "got {}",
            p.estimated_base_rows
        );
    }

    #[test]
    fn excluded_bound_prices_below_included() {
        let mut db = Database::new();
        db.create_table(
            TableSchema::builder("t")
                .column("id", crate::DataType::Int)
                .column("x", crate::DataType::Int)
                .primary_key(&["id"])
                .build()
                .unwrap(),
        )
        .unwrap();
        db.table_mut("t").unwrap().create_range_index("x").unwrap();
        for i in 0..100i64 {
            db.insert("t", row![i, i]).unwrap();
        }
        let gt = plan(&db, "SELECT id FROM t WHERE x > 90").estimated_selectivity;
        let ge = plan(&db, "SELECT id FROM t WHERE x >= 90").estimated_selectivity;
        // Strict `>` excludes the boundary value's own mass (~1 row).
        assert!(gt < ge, "x > 90 ({gt}) must price below x >= 90 ({ge})");
        assert!(
            ((ge - gt) - 0.01).abs() < 5e-3,
            "difference is the boundary's equality mass, got {}",
            ge - gt
        );
    }

    #[test]
    fn null_heavy_column_scales_by_fill_rate() {
        let mut db = Database::new();
        db.create_table(
            TableSchema::builder("m")
                .column("id", crate::DataType::Int)
                .nullable_column("rating", crate::DataType::Float)
                .primary_key(&["id"])
                .build()
                .unwrap(),
        )
        .unwrap();
        db.table_mut("m")
            .unwrap()
            .create_range_index("rating")
            .unwrap();
        // 90% NULL: a predicate matching every non-null row still keeps
        // only 10% of the table.
        for i in 0..100i64 {
            let rating = if i < 90 {
                Value::Null
            } else {
                Value::Float((i - 90) as f64)
            };
            db.insert("m", row![i, rating]).unwrap();
        }
        let p = plan(&db, "SELECT id FROM m WHERE rating >= 0.0");
        assert!(
            p.estimated_selectivity <= 0.12,
            "NULL-heavy column must scale by fill rate, got {}",
            p.estimated_selectivity
        );
        // 10% clears the index threshold a 100% estimate missed.
        assert_eq!(p.access.describe(), "index_range(rating)");
    }

    #[test]
    fn intersect_sorted_basics() {
        let a: Vec<RowId> = [1u64, 3, 5, 7].map(RowId).to_vec();
        let b: Vec<RowId> = [2u64, 3, 4, 7, 9].map(RowId).to_vec();
        assert_eq!(intersect_sorted(&a, &b), vec![RowId(3), RowId(7)]);
        assert_eq!(intersect_sorted(&a, &[]), Vec::<RowId>::new());
    }

    #[test]
    fn describe_is_stable() {
        let db = db();
        let p = plan(&db, "SELECT * FROM movie WHERE movie_id = 42");
        assert!(p.describe().starts_with("index_eq(movie_id) sel="));
    }

    /// Two tables joined on a column pair with *no* hash index on the
    /// right side; `ordered` adds range indexes on both key columns.
    fn unindexed_join_db(ordered: bool) -> Database {
        let mut db = Database::new();
        db.create_table(
            TableSchema::builder("l")
                .column("l_id", crate::DataType::Int)
                .column("k", crate::DataType::Int)
                .primary_key(&["l_id"])
                .build()
                .unwrap(),
        )
        .unwrap();
        db.create_table(
            TableSchema::builder("r")
                .column("r_id", crate::DataType::Int)
                .column("k", crate::DataType::Int)
                .primary_key(&["r_id"])
                .build()
                .unwrap(),
        )
        .unwrap();
        for i in 0..200i64 {
            db.insert("l", row![i, i % 50]).unwrap();
            db.insert("r", row![i, i % 50]).unwrap();
        }
        if ordered {
            db.table_mut("l").unwrap().create_range_index("k").unwrap();
            db.table_mut("r").unwrap().create_range_index("k").unwrap();
        }
        db
    }

    #[test]
    fn hash_indexed_join_column_keeps_index_probe() {
        let db = db();
        // screening.movie_id is an FK, auto hash-indexed.
        let p = plan(
            &db,
            "SELECT movie.title FROM movie \
             JOIN screening ON screening.movie_id = movie.movie_id",
        );
        assert_eq!(p.join_order[0].strategy, JoinStrategy::IndexProbe);
    }

    #[test]
    fn unindexed_join_column_builds_hash() {
        let db = unindexed_join_db(false);
        let p = plan(&db, "SELECT l.l_id FROM l JOIN r ON r.k = l.k");
        assert_eq!(p.join_order[0].strategy, JoinStrategy::BuildHash);
        assert!(p.describe().contains("0:hash"), "{}", p.describe());
    }

    #[test]
    fn ordered_sides_with_small_outer_merge() {
        let db = unindexed_join_db(true);
        // A selective base probe shrinks the outer estimate far below the
        // right side's row count: the merge walk beats the hash build.
        let p = plan(
            &db,
            "SELECT l.l_id FROM l JOIN r ON r.k = l.k WHERE l.l_id = 7",
        );
        assert_eq!(p.join_order[0].strategy, JoinStrategy::MergeRange);
        // With the whole table as outer stream, sorting the outer keys
        // costs more than one hashing pass: BuildHash wins.
        let p = plan(&db, "SELECT l.l_id FROM l JOIN r ON r.k = l.k");
        assert_eq!(p.join_order[0].strategy, JoinStrategy::BuildHash);
    }

    #[test]
    fn per_key_options_disable_strategies() {
        let db = unindexed_join_db(false);
        let Statement::Select(sel) =
            parse_statement("SELECT l.l_id FROM l JOIN r ON r.k = l.k").unwrap()
        else {
            unreachable!()
        };
        let p = plan_select_with(&db, &sel, &PlanOptions::per_key_joins()).unwrap();
        assert_eq!(p.join_order[0].strategy, JoinStrategy::IndexProbe);
        let p = plan_select_with(&db, &sel, &PlanOptions::single_access_path()).unwrap();
        assert_eq!(p.join_order[0].strategy, JoinStrategy::IndexProbe);
    }

    /// [`unindexed_join_db`] plus a selective, hash-indexed `tag` column
    /// on the right table (~1% per value) — the build-side pushdown
    /// candidate.
    fn pushdown_db(ordered: bool) -> Database {
        let mut db = Database::new();
        db.create_table(
            TableSchema::builder("l")
                .column("l_id", crate::DataType::Int)
                .column("k", crate::DataType::Int)
                .primary_key(&["l_id"])
                .build()
                .unwrap(),
        )
        .unwrap();
        db.create_table(
            TableSchema::builder("r")
                .column("r_id", crate::DataType::Int)
                .column("k", crate::DataType::Int)
                .column("tag", crate::DataType::Int)
                .primary_key(&["r_id"])
                .build()
                .unwrap(),
        )
        .unwrap();
        db.table_mut("r").unwrap().create_index("tag").unwrap();
        for i in 0..200i64 {
            db.insert("l", row![i, i % 50]).unwrap();
            db.insert("r", row![i, i % 50, i % 100]).unwrap();
        }
        if ordered {
            db.table_mut("l").unwrap().create_range_index("k").unwrap();
            db.table_mut("r").unwrap().create_range_index("k").unwrap();
        }
        db
    }

    #[test]
    fn selective_build_conjunct_prefilters_hash_join() {
        let db = pushdown_db(false);
        let p = plan(
            &db,
            "SELECT l.l_id FROM l JOIN r ON r.k = l.k WHERE r.tag = 7",
        );
        assert_eq!(p.join_order[0].strategy, JoinStrategy::BuildHash);
        assert_eq!(
            p.join_order[0].build_access.describe(),
            "index_eq(tag)",
            "{}",
            p.describe()
        );
        assert_eq!(p.build_pushdown_count(), 1);
        // The consumed conjunct must leave the residual stage — it would
        // otherwise be evaluated twice.
        assert_eq!(p.staged_count(), 0, "{}", p.describe());
        assert!(p.describe().contains("0:hash+pf"), "{}", p.describe());
    }

    #[test]
    fn unselective_build_conjunct_stays_a_staged_filter() {
        let db = pushdown_db(false);
        // `tag >= 0` keeps everything; no index path clears the
        // threshold, so the build side stays unfiltered and the conjunct
        // stays staged.
        let p = plan(
            &db,
            "SELECT l.l_id FROM l JOIN r ON r.k = l.k WHERE r.tag >= 0",
        );
        assert_eq!(p.join_order[0].build_access, AccessPath::FullScan);
        assert_eq!(p.build_pushdown_count(), 0);
        assert_eq!(p.staged_count(), 1);
    }

    #[test]
    fn selective_probe_flips_merge_to_filtered_build() {
        let db = pushdown_db(true);
        // Without the tag conjunct the tiny outer stream merges against
        // the ordered index (the PR 3 choice)...
        let p = plan(
            &db,
            "SELECT l.l_id FROM l JOIN r ON r.k = l.k WHERE l.l_id = 7",
        );
        assert_eq!(p.join_order[0].strategy, JoinStrategy::MergeRange);
        // ...but a 1% probe on the build side makes the filtered hash
        // build cheaper than walking all 200 index entries.
        let p = plan(
            &db,
            "SELECT l.l_id FROM l JOIN r ON r.k = l.k WHERE l.l_id = 7 AND r.tag = 7",
        );
        assert_eq!(p.join_order[0].strategy, JoinStrategy::BuildHash);
        assert_eq!(p.join_order[0].build_access.describe(), "index_eq(tag)");
        assert_eq!(p.staged_count(), 0, "{}", p.describe());
    }

    #[test]
    fn join_key_probe_clamps_merge_walk() {
        let db = pushdown_db(true);
        // A selective bound on the join key itself: the merge walk can be
        // clamped to the probe's range, beating both the full walk and
        // the filtered hash build.
        let p = plan(
            &db,
            "SELECT l.l_id FROM l JOIN r ON r.k = l.k WHERE l.l_id = 7 AND r.k < 3",
        );
        assert_eq!(p.join_order[0].strategy, JoinStrategy::MergeRange);
        assert_eq!(
            p.join_order[0].build_access.describe(),
            "index_range(k)",
            "{}",
            p.describe()
        );
        assert!(p.describe().contains("0:merge+pf"), "{}", p.describe());
        assert_eq!(p.staged_count(), 0, "{}", p.describe());
    }

    #[test]
    fn pushdown_options_flag_disables_prefilter() {
        let db = pushdown_db(false);
        let Statement::Select(sel) =
            parse_statement("SELECT l.l_id FROM l JOIN r ON r.k = l.k WHERE r.tag = 7").unwrap()
        else {
            unreachable!()
        };
        for opts in [
            PlanOptions::no_build_pushdown(),
            PlanOptions::per_key_joins(),
            PlanOptions::single_access_path(),
        ] {
            let p = plan_select_with(&db, &sel, &opts).unwrap();
            assert_eq!(p.build_pushdown_count(), 0);
            assert_eq!(p.staged_count(), 1, "conjunct must stay a filter");
        }
    }

    #[test]
    fn indexed_join_pushdown_prefilters_when_priced_cheaper() {
        let mut db = pushdown_db(false);
        db.table_mut("r").unwrap().create_index("k").unwrap();
        let p = plan(
            &db,
            "SELECT l.l_id FROM l JOIN r ON r.k = l.k WHERE r.tag = 7",
        );
        assert_eq!(p.join_order[0].strategy, JoinStrategy::IndexProbe);
        // A selective build-side conjunct pre-filters the probed buckets:
        // fetching the ~2 tagged rows once beats intersecting nothing
        // while 200 outer tuples each probe a 4-row bucket unfiltered.
        assert_eq!(
            p.join_order[0].build_access,
            AccessPath::Index(vec![IndexProbe::Eq {
                column: "tag".into(),
                value: Value::Int(7),
            }])
        );
        assert_eq!(p.staged_count(), 0, "consumed by the pre-filter");
        assert!(p.describe().contains("0:probe+pf"), "{}", p.describe());
    }

    #[test]
    fn indexed_join_pushdown_declined_when_probes_are_cheaper() {
        // `r_id` is the primary key, so the join key is already indexed.
        let db = pushdown_db(false);
        let p = plan(
            &db,
            "SELECT l.l_id FROM l JOIN r ON r.r_id = l.l_id \
             WHERE l.l_id = 7 AND r.tag = 7",
        );
        assert_eq!(p.join_order[0].strategy, JoinStrategy::IndexProbe);
        // One surviving outer tuple probing a unique-key bucket touches
        // ~1 row; the pre-filter would fetch 2 — keep the plain probe.
        assert_eq!(p.join_order[0].build_access, AccessPath::FullScan);
        assert_eq!(p.staged_count(), 1);
    }

    #[test]
    fn conservative_plan_still_assigns_strategies() {
        let db = unindexed_join_db(false);
        // `no_such` disables pushdown/reordering (lazy error semantics),
        // but the join itself must not degrade to the quadratic fallback.
        let p = plan(
            &db,
            "SELECT l.l_id FROM l JOIN r ON r.k = l.k WHERE no_such = 1",
        );
        assert_eq!(p.access.describe(), "scan");
        assert_eq!(p.join_order[0].strategy, JoinStrategy::BuildHash);
    }
}
