//! Cost-aware access-path planning for `SELECT`.
//!
//! The executor used to materialize the whole base table and evaluate
//! `WHERE` after joins; this module decides, per statement, how to touch
//! as few rows as possible. Planning has three steps:
//!
//! 1. **Conjunct extraction.** The `WHERE` tree is split at top-level
//!    `AND`s. Each conjunct is classified as *pushable* (every column it
//!    references resolves — unambiguously — to the base table, so it can
//!    be evaluated before joins multiply rows) or *residual* (references
//!    joined columns, or does not resolve; evaluated after joins with the
//!    executor's lazy per-row error semantics, matching the previous
//!    behaviour).
//!
//! 2. **Sargability.** A pushable conjunct is *sargable* when it has the
//!    shape `column <op> literal` with `op ∈ {=, <, <=, >, >=}` and the
//!    literal coerces to the column type. Equality conjuncts can be served
//!    by a hash index ([`Table::lookup`]); all sargable shapes can be
//!    served by an ordered [`RangeIndex`](crate::index::RangeIndex) when
//!    one exists on the column (equality becomes the degenerate range
//!    `[v, v]`). Conjuncts on the same column are folded into a single
//!    bound pair, so `price > 5 AND price <= 9` probes the index once.
//!    `!=`, `LIKE`, `IS NULL`, `OR` and `NOT` are never sargable and stay
//!    as filters. `NULL` literals never match under `WHERE`, so indexes
//!    (which exclude NULLs) are always safe to substitute for a scan.
//!
//! 3. **Index-vs-scan choice.** Every sargable candidate is priced with
//!    the table statistics from [`crate::stats`]: equality via
//!    [`ColumnStats::eq_selectivity`] (exact for values tracked in the
//!    MCV list, uniform over the remaining distinct values otherwise),
//!    ranges via [`Histogram::range_selectivity`] when the column is
//!    numeric/date (falling back to the classic 1/3 guess without a
//!    histogram). The cheapest candidate wins; an index path is only
//!    chosen when its estimated selectivity is at or below
//!    [`INDEX_SELECTIVITY_THRESHOLD`] — for predicates that keep most of
//!    the table, a sequential scan avoids the index's pointer-chasing and
//!    sort overhead and degrades gracefully, in the spirit of the robust
//!    hybrid-join literature. Statistics are cached per table inside
//!    [`Database`] and invalidated by the table version counter, so
//!    planning is O(#conjuncts) on the hot path.
//!
//! The chosen conjuncts are *consumed*: the executor does not re-evaluate
//! the predicate the index already guarantees. Everything else stays in
//! [`SelectPlan::pushed`] / [`SelectPlan::residual`].

use std::ops::Bound;

use crate::database::Database;
use crate::error::{Result, TxdbError};
use crate::stats::ColumnStats;
use crate::value::{DataType, Value};

use super::ast::{ColumnRef, SelectStmt, SqlExpr};
use crate::predicate::CmpOp;

/// Estimated fraction of rows a predicate may keep while an index lookup
/// is still considered cheaper than a sequential scan.
pub const INDEX_SELECTIVITY_THRESHOLD: f64 = 0.3;

/// One output position of a (possibly joined) row stream.
#[derive(Debug, Clone)]
pub struct Slot {
    /// Ordinal of the owning table in FROM-order (0 = base table).
    pub table_ord: usize,
    /// Column index within the owning table's schema.
    pub col_idx: usize,
    /// Owning table name.
    pub table: String,
    /// Column name.
    pub column: String,
    /// Column type.
    pub ty: DataType,
}

/// Column layout of the row stream produced by `FROM base JOIN ...`.
#[derive(Debug, Clone)]
pub struct Layout {
    pub slots: Vec<Slot>,
    /// Number of tables (base + joins).
    pub tables: usize,
}

impl Layout {
    /// Build the full layout for a SELECT (base table plus all joins).
    pub fn build(db: &Database, sel: &SelectStmt) -> Result<Layout> {
        let mut layout = Layout {
            slots: Vec::new(),
            tables: 0,
        };
        layout.push_table(db, &sel.table)?;
        for join in &sel.joins {
            layout.push_table(db, &join.table)?;
        }
        Ok(layout)
    }

    fn push_table(&mut self, db: &Database, table: &str) -> Result<()> {
        let t = db.table(table)?;
        let ord = self.tables;
        for (i, c) in t.schema().columns().iter().enumerate() {
            self.slots.push(Slot {
                table_ord: ord,
                col_idx: i,
                table: table.to_string(),
                column: c.name.clone(),
                ty: c.ty,
            });
        }
        self.tables += 1;
        Ok(())
    }

    /// Resolve a column reference over the whole layout: exactly one slot
    /// must match (qualified references match name + table).
    pub fn resolve(&self, r: &ColumnRef) -> Result<usize> {
        self.resolve_prefix(r, self.tables)
    }

    /// Resolve against only the first `tables` tables — used for join keys,
    /// which (as before the planner) may only reference tables already in
    /// the stream.
    pub fn resolve_prefix(&self, r: &ColumnRef, tables: usize) -> Result<usize> {
        let mut found: Option<usize> = None;
        for (i, s) in self.slots.iter().enumerate() {
            if s.table_ord >= tables {
                break;
            }
            if s.column == r.column && r.table.as_ref().is_none_or(|rt| rt == &s.table) {
                if found.is_some() {
                    return Err(TxdbError::Parse(format!(
                        "ambiguous column reference `{r}`"
                    )));
                }
                found = Some(i);
            }
        }
        found.ok_or_else(|| TxdbError::UnknownColumn {
            table: r.table.clone().unwrap_or_else(|| "<any>".into()),
            column: r.column.clone(),
        })
    }
}

/// How the executor reaches the base table's rows.
#[derive(Debug, Clone, PartialEq)]
pub enum AccessPath {
    /// Sequential scan of all rows.
    FullScan,
    /// Hash-index point lookup: `column = value`.
    IndexEq { column: String, value: Value },
    /// Ordered-index range probe over `column`.
    IndexRange {
        column: String,
        lo: Bound<Value>,
        hi: Bound<Value>,
    },
}

impl AccessPath {
    /// Short form for logs/tests: `scan`, `index_eq(col)`, `index_range(col)`.
    pub fn describe(&self) -> String {
        match self {
            AccessPath::FullScan => "scan".to_string(),
            AccessPath::IndexEq { column, .. } => format!("index_eq({column})"),
            AccessPath::IndexRange { column, .. } => format!("index_range({column})"),
        }
    }
}

/// The plan for one `SELECT`: access path plus partitioned filters.
#[derive(Debug, Clone)]
pub struct SelectPlan {
    /// Full column layout (base + joins).
    pub layout: Layout,
    /// How base-table rows are produced.
    pub access: AccessPath,
    /// Base-only conjuncts evaluated before joins (excluding any the
    /// access path already guarantees).
    pub pushed: Vec<SqlExpr>,
    /// Conjuncts evaluated after joins.
    pub residual: Vec<SqlExpr>,
    /// Estimated fraction of base rows surviving the access path.
    pub estimated_selectivity: f64,
}

impl SelectPlan {
    /// One-line summary, e.g. `index_eq(movie_id) sel=0.02 pushed=1 residual=0`.
    pub fn describe(&self) -> String {
        format!(
            "{} sel={:.3} pushed={} residual={}",
            self.access.describe(),
            self.estimated_selectivity,
            self.pushed.len(),
            self.residual.len()
        )
    }
}

/// Split a WHERE tree at top-level `AND`s.
fn conjuncts(expr: &SqlExpr, out: &mut Vec<SqlExpr>) {
    match expr {
        SqlExpr::And(a, b) => {
            conjuncts(a, out);
            conjuncts(b, out);
        }
        other => out.push(other.clone()),
    }
}

/// Whether every column reference in `expr` resolves to the base table
/// (ordinal 0), unambiguously over the full layout.
fn is_base_only(layout: &Layout, expr: &SqlExpr) -> bool {
    let check = |c: &ColumnRef| {
        layout
            .resolve(c)
            .map(|i| layout.slots[i].table_ord == 0)
            .unwrap_or(false)
    };
    match expr {
        SqlExpr::Cmp { column, .. } => check(column),
        SqlExpr::Like { column, .. } => check(column),
        SqlExpr::IsNull { column, .. } => check(column),
        SqlExpr::And(a, b) | SqlExpr::Or(a, b) => {
            is_base_only(layout, a) && is_base_only(layout, b)
        }
        SqlExpr::Not(a) => is_base_only(layout, a),
    }
}

/// Whether every column reference in `expr` resolves over the full layout.
fn resolves(layout: &Layout, expr: &SqlExpr) -> bool {
    match expr {
        SqlExpr::Cmp { column, .. }
        | SqlExpr::Like { column, .. }
        | SqlExpr::IsNull { column, .. } => layout.resolve(column).is_ok(),
        SqlExpr::And(a, b) | SqlExpr::Or(a, b) => resolves(layout, a) && resolves(layout, b),
        SqlExpr::Not(a) => resolves(layout, a),
    }
}

/// A sargable candidate: conjunct index, column, op, coerced literal.
struct Sarg {
    conjunct: usize,
    column: String,
    op: CmpOp,
    value: Value,
}

/// Map a value onto the histogram's numeric axis (same convention as
/// [`crate::stats`]).
fn numeric_axis(v: &Value) -> Option<f64> {
    match v {
        Value::Date(d) => Some(d.day_number() as f64),
        other => other.as_float(),
    }
}

fn eq_selectivity(stats: Option<&ColumnStats>, value: &Value) -> f64 {
    match stats {
        Some(s) => s.eq_selectivity(value),
        None => 1.0 / 3.0,
    }
}

fn range_selectivity(stats: Option<&ColumnStats>, lo: &Bound<Value>, hi: &Bound<Value>) -> f64 {
    let Some(s) = stats else { return 1.0 / 3.0 };
    let Some(h) = &s.histogram else {
        return 1.0 / 3.0;
    };
    let lo_f = match lo {
        Bound::Included(v) | Bound::Excluded(v) => numeric_axis(v),
        Bound::Unbounded => Some(h.min),
    };
    let hi_f = match hi {
        Bound::Included(v) | Bound::Excluded(v) => numeric_axis(v),
        Bound::Unbounded => Some(h.max),
    };
    match (lo_f, hi_f) {
        (Some(a), Some(b)) => h.range_selectivity(a, b),
        _ => 1.0 / 3.0,
    }
}

/// Per-column bound accumulator: (column, folded bounds, conjunct ids).
type ColumnBounds<'a> = (&'a str, (Bound<Value>, Bound<Value>), Vec<usize>);

/// Fold `op value` into an accumulating bound pair.
fn tighten(bounds: &mut (Bound<Value>, Bound<Value>), op: CmpOp, value: &Value) {
    let (lo, hi) = bounds;
    match op {
        CmpOp::Eq => {
            *lo = tighter_lo(lo, Bound::Included(value.clone()));
            *hi = tighter_hi(hi, Bound::Included(value.clone()));
        }
        CmpOp::Gt => *lo = tighter_lo(lo, Bound::Excluded(value.clone())),
        CmpOp::Ge => *lo = tighter_lo(lo, Bound::Included(value.clone())),
        CmpOp::Lt => *hi = tighter_hi(hi, Bound::Excluded(value.clone())),
        CmpOp::Le => *hi = tighter_hi(hi, Bound::Included(value.clone())),
        CmpOp::Ne => {}
    }
}

fn tighter_lo(current: &Bound<Value>, new: Bound<Value>) -> Bound<Value> {
    let newer = match (&current, &new) {
        (Bound::Unbounded, _) => true,
        (_, Bound::Unbounded) => false,
        (Bound::Included(c) | Bound::Excluded(c), Bound::Included(n) | Bound::Excluded(n)) => {
            match n.partial_cmp(c) {
                Some(std::cmp::Ordering::Greater) => true,
                Some(std::cmp::Ordering::Equal) => {
                    // Excluded is tighter than Included for a lower bound.
                    matches!(new, Bound::Excluded(_)) && matches!(current, Bound::Included(_))
                }
                _ => false,
            }
        }
    };
    if newer {
        new
    } else {
        current.clone()
    }
}

fn tighter_hi(current: &Bound<Value>, new: Bound<Value>) -> Bound<Value> {
    let newer = match (&current, &new) {
        (Bound::Unbounded, _) => true,
        (_, Bound::Unbounded) => false,
        (Bound::Included(c) | Bound::Excluded(c), Bound::Included(n) | Bound::Excluded(n)) => {
            match n.partial_cmp(c) {
                Some(std::cmp::Ordering::Less) => true,
                Some(std::cmp::Ordering::Equal) => {
                    matches!(new, Bound::Excluded(_)) && matches!(current, Bound::Included(_))
                }
                _ => false,
            }
        }
    };
    if newer {
        new
    } else {
        current.clone()
    }
}

/// Plan a `SELECT`: partition the WHERE clause and choose the access path.
pub fn plan_select(db: &Database, sel: &SelectStmt) -> Result<SelectPlan> {
    let layout = Layout::build(db, sel)?;
    let base = db.table(&sel.table)?;
    let schema = base.schema();

    let mut all = Vec::new();
    if let Some(expr) = &sel.where_clause {
        conjuncts(expr, &mut all);
    }
    // An unresolvable (unknown or ambiguous) column anywhere in the WHERE
    // clause disables pushdown and index use entirely: the seed executor
    // raised the resolution error lazily, per evaluated joined row, so any
    // filtering before the join could change *whether* the error surfaces
    // at all. The conservative plan evaluates every conjunct post-join in
    // original order — byte-identical behaviour, including errors.
    if all.iter().any(|e| !resolves(&layout, e)) {
        return Ok(SelectPlan {
            layout,
            access: AccessPath::FullScan,
            pushed: Vec::new(),
            residual: all,
            estimated_selectivity: 1.0,
        });
    }
    let mut pushed: Vec<SqlExpr> = Vec::new();
    let mut residual: Vec<SqlExpr> = Vec::new();
    let mut sargs: Vec<Sarg> = Vec::new();
    for expr in all {
        if !is_base_only(&layout, &expr) {
            residual.push(expr);
            continue;
        }
        if let SqlExpr::Cmp { column, op, value } = &expr {
            if *op != CmpOp::Ne && !value.is_null() {
                if let Some(idx) = schema.column_index(&column.column) {
                    if let Ok(coerced) = value.coerce_to(schema.columns()[idx].ty) {
                        if !coerced.is_null() {
                            sargs.push(Sarg {
                                conjunct: pushed.len(),
                                column: column.column.clone(),
                                op: *op,
                                value: coerced,
                            });
                        }
                    }
                }
            }
        }
        pushed.push(expr);
    }

    // Price every candidate with cached statistics.
    let mut best: Option<(AccessPath, f64, Vec<usize>)> = None;
    if !sargs.is_empty() && !base.is_empty() {
        db.with_stats(&sel.table, |stats| {
            // Equality conjuncts served by a hash index.
            for s in &sargs {
                if s.op == CmpOp::Eq && base.has_index(&s.column) {
                    let sel_est = eq_selectivity(stats.column(&s.column), &s.value);
                    if best.as_ref().is_none_or(|(_, b, _)| sel_est < *b) {
                        best = Some((
                            AccessPath::IndexEq {
                                column: s.column.clone(),
                                value: s.value.clone(),
                            },
                            sel_est,
                            vec![s.conjunct],
                        ));
                    }
                }
            }
            // Range probes over an ordered index, folding per-column bounds.
            let mut by_column: Vec<ColumnBounds> = Vec::new();
            for s in &sargs {
                if !base.has_range_index(&s.column) {
                    continue;
                }
                // NaN cannot fold into ordered bounds (`partial_cmp` is
                // `None`, so `tighten` would silently drop it while the
                // conjunct got marked consumed). Leave such conjuncts as
                // plain filters, where they evaluate to false as before.
                if matches!(&s.value, Value::Float(f) if f.is_nan()) {
                    continue;
                }
                match by_column.iter_mut().find(|(c, _, _)| *c == s.column) {
                    Some((_, bounds, used)) => {
                        tighten(bounds, s.op, &s.value);
                        used.push(s.conjunct);
                    }
                    None => {
                        let mut bounds = (Bound::Unbounded, Bound::Unbounded);
                        tighten(&mut bounds, s.op, &s.value);
                        by_column.push((&s.column, bounds, vec![s.conjunct]));
                    }
                }
            }
            for (column, (lo, hi), used) in by_column {
                let sel_est = range_selectivity(stats.column(column), &lo, &hi);
                if best.as_ref().is_none_or(|(_, b, _)| sel_est < *b) {
                    best = Some((
                        AccessPath::IndexRange {
                            column: column.to_string(),
                            lo,
                            hi,
                        },
                        sel_est,
                        used,
                    ));
                }
            }
        })?;
    }

    let (access, estimated_selectivity, consumed) = match best {
        Some((path, sel_est, used)) if sel_est <= INDEX_SELECTIVITY_THRESHOLD => {
            (path, sel_est, used)
        }
        _ => (AccessPath::FullScan, 1.0, Vec::new()),
    };
    // Drop consumed conjuncts (the access path already guarantees them).
    let pushed = pushed
        .into_iter()
        .enumerate()
        .filter(|(i, _)| !consumed.contains(i))
        .map(|(_, e)| e)
        .collect();

    Ok(SelectPlan {
        layout,
        access,
        pushed,
        residual,
        estimated_selectivity,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sql::parser::parse_statement;
    use crate::sql::Statement;
    use crate::{row, Database, TableSchema};

    fn plan(db: &Database, sql: &str) -> SelectPlan {
        let Statement::Select(sel) = parse_statement(sql).unwrap() else {
            panic!("not a select")
        };
        plan_select(db, &sel).unwrap()
    }

    /// movies with a PK hash index on movie_id, a hash index on genre
    /// (3 skewed values) and a range index on rating.
    fn db() -> Database {
        let mut db = Database::new();
        db.create_table(
            TableSchema::builder("movie")
                .column("movie_id", crate::DataType::Int)
                .column("title", crate::DataType::Text)
                .column("genre", crate::DataType::Text)
                .nullable_column("rating", crate::DataType::Float)
                .primary_key(&["movie_id"])
                .build()
                .unwrap(),
        )
        .unwrap();
        db.create_table(
            TableSchema::builder("screening")
                .column("screening_id", crate::DataType::Int)
                .column("movie_id", crate::DataType::Int)
                .column("price", crate::DataType::Float)
                .primary_key(&["screening_id"])
                .foreign_key("movie_id", "movie", "movie_id")
                .build()
                .unwrap(),
        )
        .unwrap();
        {
            let t = db.table_mut("movie").unwrap();
            t.create_index("genre").unwrap();
            t.create_range_index("rating").unwrap();
        }
        for i in 0..100i64 {
            // genre: 80% Drama, 15% Action, 5% Noir.
            let genre = if i % 20 == 19 {
                "Noir"
            } else if i % 20 >= 16 {
                "Action"
            } else {
                "Drama"
            };
            db.insert(
                "movie",
                row![i, format!("M{i}"), genre, (i % 50) as f64 / 5.0],
            )
            .unwrap();
        }
        for i in 0..50i64 {
            db.insert("screening", row![i, i % 100, 10.0 + (i % 7) as f64])
                .unwrap();
        }
        db
    }

    #[test]
    fn pk_equality_uses_hash_index() {
        let db = db();
        let p = plan(&db, "SELECT * FROM movie WHERE movie_id = 42");
        assert_eq!(p.access.describe(), "index_eq(movie_id)");
        assert!(
            p.estimated_selectivity <= 0.02,
            "sel {}",
            p.estimated_selectivity
        );
        assert!(p.pushed.is_empty(), "eq conjunct must be consumed");
        assert!(p.residual.is_empty());
    }

    #[test]
    fn selective_genre_uses_index_common_genre_scans() {
        let db = db();
        let rare = plan(&db, "SELECT * FROM movie WHERE genre = 'Noir'");
        assert_eq!(rare.access.describe(), "index_eq(genre)");
        // 80% of rows are Drama: a scan beats the index.
        let common = plan(&db, "SELECT * FROM movie WHERE genre = 'Drama'");
        assert_eq!(common.access.describe(), "scan");
        assert_eq!(common.pushed.len(), 1, "filter still applied");
    }

    #[test]
    fn range_predicate_uses_range_index_and_folds_bounds() {
        let db = db();
        let p = plan(
            &db,
            "SELECT * FROM movie WHERE rating > 8.0 AND rating <= 9.0",
        );
        assert_eq!(p.access.describe(), "index_range(rating)");
        assert!(p.pushed.is_empty(), "both bounds folded into the probe");
        let AccessPath::IndexRange { lo, hi, .. } = &p.access else {
            panic!()
        };
        assert_eq!(*lo, Bound::Excluded(Value::Float(8.0)));
        assert_eq!(*hi, Bound::Included(Value::Float(9.0)));
    }

    #[test]
    fn wide_range_falls_back_to_scan() {
        let db = db();
        let p = plan(&db, "SELECT * FROM movie WHERE rating >= 0.0");
        assert_eq!(p.access.describe(), "scan");
    }

    #[test]
    fn unindexed_column_scans() {
        let db = db();
        let p = plan(&db, "SELECT * FROM movie WHERE title = 'M7'");
        assert_eq!(p.access.describe(), "scan");
        assert_eq!(p.pushed.len(), 1);
    }

    #[test]
    fn disjunction_is_not_sargable() {
        let db = db();
        let p = plan(
            &db,
            "SELECT * FROM movie WHERE movie_id = 1 OR movie_id = 2",
        );
        assert_eq!(p.access.describe(), "scan");
        assert_eq!(p.pushed.len(), 1);
    }

    #[test]
    fn base_conjunct_pushed_joined_conjunct_residual() {
        let db = db();
        let p = plan(
            &db,
            "SELECT movie.title FROM movie \
             JOIN screening ON screening.movie_id = movie.movie_id \
             WHERE movie.movie_id = 3 AND screening.price > 11.0",
        );
        assert_eq!(p.access.describe(), "index_eq(movie_id)");
        assert!(p.pushed.is_empty());
        assert_eq!(p.residual.len(), 1, "price predicate runs after the join");
    }

    #[test]
    fn ambiguous_unqualified_column_is_not_pushed() {
        let db = db();
        // `movie_id` exists in both tables: resolution over the joined
        // layout is ambiguous, so the conjunct must stay residual (the
        // executor surfaces the error lazily, as before the planner).
        let p = plan(
            &db,
            "SELECT movie.title FROM movie \
             JOIN screening ON screening.movie_id = movie.movie_id \
             WHERE movie_id = 3",
        );
        assert_eq!(p.access.describe(), "scan");
        assert_eq!(p.residual.len(), 1);
    }

    #[test]
    fn contradictory_equalities_consume_only_chosen() {
        let db = db();
        let p = plan(
            &db,
            "SELECT * FROM movie WHERE movie_id = 1 AND movie_id = 2",
        );
        assert_eq!(p.access.describe(), "index_eq(movie_id)");
        // One equality drives the probe, the other must remain a filter.
        assert_eq!(p.pushed.len(), 1);
    }

    #[test]
    fn empty_table_scans() {
        let mut db = Database::new();
        db.create_table(
            TableSchema::builder("t")
                .column("id", crate::DataType::Int)
                .primary_key(&["id"])
                .build()
                .unwrap(),
        )
        .unwrap();
        let p = plan(&db, "SELECT * FROM t WHERE id = 1");
        assert_eq!(p.access.describe(), "scan");
    }

    #[test]
    fn nan_literal_is_not_sargable_for_ranges() {
        let db = db();
        // 'NaN' coerces to Float(NaN) against the rating column; it must
        // stay a filter (evaluating to false), never a consumed bound.
        let p = plan(
            &db,
            "SELECT * FROM movie WHERE rating > 9.0 AND rating > 'NaN'",
        );
        match p.access {
            AccessPath::IndexRange { .. } => {
                assert_eq!(p.pushed.len(), 1, "NaN conjunct must stay pushed");
            }
            AccessPath::FullScan => {
                assert_eq!(p.pushed.len(), 2);
            }
            other => panic!("unexpected access {other:?}"),
        }
    }

    #[test]
    fn describe_is_stable() {
        let db = db();
        let p = plan(&db, "SELECT * FROM movie WHERE movie_id = 42");
        assert!(p.describe().starts_with("index_eq(movie_id) sel="));
    }
}
