//! A small SQL subset: `CREATE TABLE`, `INSERT`, `SELECT` (with inner
//! joins, `WHERE`, `ORDER BY`, `LIMIT`), `UPDATE` and `DELETE`.
//!
//! The conversational layers use the typed API; the SQL layer exists so
//! that example databases can be loaded from `.sql` scripts, that tests can
//! cross-check the typed API against a second implementation path, and that
//! the repository is usable as a standalone mini database.

mod ast;
mod exec;
mod lexer;
mod parser;
pub mod plan;

pub use ast::{
    AggFunc, ColumnRef, JoinClause, Projection, SelectItem, SelectStmt, SqlExpr, Statement,
};
pub use exec::{
    execute, execute_script, execute_select_reference, execute_select_with, QueryResult, ResultSet,
};
pub use lexer::{tokenize, Token};
pub use parser::parse_statement;
pub use plan::{
    plan_select, plan_select_with, AccessPath, IndexProbe, JoinStrategy, PlanOptions, PlannedJoin,
    SelectPlan,
};
