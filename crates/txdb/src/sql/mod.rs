//! A small SQL subset: `CREATE TABLE`, `INSERT`, `SELECT` (with inner
//! joins, `WHERE`, `GROUP BY`, aggregates, `ORDER BY`, `LIMIT`),
//! `UPDATE` and `DELETE`.
//!
//! The conversational layers use the typed API; the SQL layer exists so
//! that example databases can be loaded from `.sql` scripts, that tests can
//! cross-check the typed API against a second implementation path, and that
//! the repository is usable as a standalone mini database.
//!
//! # Pipeline
//!
//! A statement flows through [`tokenize`] → [`parse_statement`] (AST
//! types re-exported below) → [`execute`]. `SELECT` additionally passes through
//! the cost-aware planner in [`plan`]: sargable-conjunct extraction,
//! multi-index AND, cardinality-greedy join ordering, a per-step
//! [`JoinStrategy`] with build-side pushdown, and staged predicate
//! evaluation — then lowers the plan into a tree of physical operators
//! in [`ops`] (scan, filter, join, aggregate, order, project nodes)
//! which the executor drives. See the [`plan`] module docs for the full
//! cost model and `ARCHITECTURE.md` at the repository root for the
//! guided tour.
//!
//! # Entry points
//!
//! - [`execute`] / [`execute_script`]: parse and run one statement / a
//!   `;`-separated script against a [`Database`](crate::Database).
//! - [`plan_select`] / [`plan_select_with`]: plan a `SELECT` without
//!   running it (the returned [`SelectPlan`] describes the chosen access
//!   path, join order, strategies and filter stages).
//! - [`execute_select_with`]: run a `SELECT` under explicit
//!   [`PlanOptions`] — benchmarks and the differential suite use this to
//!   pin earlier optimizer generations against the current one.
//! - [`execute_select_reference`]: the naive materialize-everything
//!   executor, kept as the executable specification the differential
//!   suite compares every other path against.
//! - [`explain_select_with`]: render the lowered operator tree —
//!   `EXPLAIN` (estimated cardinalities only) or `EXPLAIN ANALYZE`
//!   (also executes; actual rows and budget peaks per node). The SQL
//!   statements of the same names route here through [`execute`].

mod ast;
pub mod budget;
mod exec;
mod lexer;
pub mod ops;
mod parser;
pub mod plan;
mod pool;

pub use ast::{
    AggFunc, ColumnRef, JoinClause, Projection, SelectItem, SelectStmt, SqlExpr, Statement,
};
pub use budget::ExecBudget;
pub use exec::{
    execute, execute_script, execute_select_at, execute_select_reference,
    execute_select_reference_at, execute_select_with, explain_select_with, QueryResult, ResultSet,
    Session,
};
pub use lexer::{tokenize, Token};
pub use parser::parse_statement;
pub use plan::{
    plan_select, plan_select_with, AccessPath, IndexProbe, JoinStrategy, PlanOptions, PlannedJoin,
    SelectPlan,
};
