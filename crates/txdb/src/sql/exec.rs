//! Executor for the SQL subset.

use crate::database::Database;
use crate::error::{Result, TxdbError};
use crate::predicate::Predicate;
use crate::row::{Row, RowId};
use crate::value::{DataType, Value};

use super::ast::{AggFunc, ColumnRef, Projection, SelectItem, SelectStmt, SqlExpr, Statement};
use super::parser::parse_statement;

/// Tabular result of a `SELECT`.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultSet {
    /// Output column names (qualified as `table.column` for joins).
    pub columns: Vec<String>,
    pub rows: Vec<Vec<Value>>,
}

impl ResultSet {
    /// Index of an output column (exact match first, then suffix match on
    /// the unqualified name).
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c == name)
            .or_else(|| self.columns.iter().position(|c| c.ends_with(&format!(".{name}"))))
    }
}

/// Outcome of executing one statement.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryResult {
    /// `CREATE TABLE` succeeded.
    Created,
    /// Number of rows inserted.
    Inserted(usize),
    /// Number of rows updated.
    Updated(usize),
    /// Number of rows deleted.
    Deleted(usize),
    /// Rows returned by a `SELECT`.
    Rows(ResultSet),
}

impl QueryResult {
    /// The result set, if this was a `SELECT`.
    pub fn rows(&self) -> Option<&ResultSet> {
        match self {
            QueryResult::Rows(rs) => Some(rs),
            _ => None,
        }
    }
}

/// Parse and execute one statement.
pub fn execute(db: &mut Database, sql: &str) -> Result<QueryResult> {
    let stmt = parse_statement(sql)?;
    execute_statement(db, stmt)
}

/// Execute a whole script: statements separated by `;`. Returns the result
/// of each statement. Statement boundaries respect string literals.
pub fn execute_script(db: &mut Database, script: &str) -> Result<Vec<QueryResult>> {
    let mut results = Vec::new();
    for stmt_text in split_statements(script) {
        let trimmed = stmt_text.trim();
        if trimmed.is_empty() {
            continue;
        }
        results.push(execute(db, trimmed)?);
    }
    Ok(results)
}

fn split_statements(script: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut current = String::new();
    let mut in_string = false;
    let mut chars = script.chars().peekable();
    while let Some(c) = chars.next() {
        if in_string {
            current.push(c);
            if c == '\'' {
                if chars.peek() == Some(&'\'') {
                    current.push(chars.next().expect("peeked"));
                } else {
                    in_string = false;
                }
            }
        } else {
            match c {
                '\'' => {
                    in_string = true;
                    current.push(c);
                }
                ';' => {
                    out.push(std::mem::take(&mut current));
                }
                _ => current.push(c),
            }
        }
    }
    if !current.trim().is_empty() {
        out.push(current);
    }
    out
}

fn execute_statement(db: &mut Database, stmt: Statement) -> Result<QueryResult> {
    match stmt {
        Statement::CreateTable(schema) => {
            db.create_table(schema)?;
            Ok(QueryResult::Created)
        }
        Statement::Insert { table, columns, rows } => {
            let schema = db.schema_of(&table)?.clone();
            let mut txn = db.begin();
            let mut n = 0;
            for literal_row in rows {
                let cells: Vec<Value> = match &columns {
                    None => {
                        if literal_row.len() != schema.arity() {
                            return Err(TxdbError::ArityMismatch {
                                table: table.clone(),
                                expected: schema.arity(),
                                got: literal_row.len(),
                            });
                        }
                        literal_row
                            .into_iter()
                            .zip(schema.columns())
                            .map(|(v, c)| coerce_literal_to(&v, c.ty))
                            .collect::<Result<_>>()?
                    }
                    Some(cols) => {
                        let mut cells = vec![Value::Null; schema.arity()];
                        if cols.len() != literal_row.len() {
                            return Err(TxdbError::ArityMismatch {
                                table: table.clone(),
                                expected: cols.len(),
                                got: literal_row.len(),
                            });
                        }
                        for (col, v) in cols.iter().zip(literal_row) {
                            let idx = schema.require_column(col)?;
                            cells[idx] = coerce_literal_to(&v, schema.columns()[idx].ty)?;
                        }
                        cells
                    }
                };
                txn.insert(&table, Row::new(cells))?;
                n += 1;
            }
            txn.commit();
            Ok(QueryResult::Inserted(n))
        }
        Statement::Select(sel) => execute_select(db, &sel).map(QueryResult::Rows),
        Statement::Update { table, set, where_clause } => {
            let pred = single_table_predicate(db, &table, where_clause.as_ref())?;
            let rids: Vec<RowId> =
                db.select(&table, &pred)?.into_iter().map(|(r, _)| r).collect();
            let schema = db.schema_of(&table)?.clone();
            let mut txn = db.begin();
            for rid in &rids {
                for (col, v) in &set {
                    let idx = schema.require_column(col)?;
                    let coerced = coerce_literal_to(v, schema.columns()[idx].ty)?;
                    txn.update(&table, *rid, col, coerced)?;
                }
            }
            txn.commit();
            Ok(QueryResult::Updated(rids.len()))
        }
        Statement::Delete { table, where_clause } => {
            let pred = single_table_predicate(db, &table, where_clause.as_ref())?;
            let rids: Vec<RowId> =
                db.select(&table, &pred)?.into_iter().map(|(r, _)| r).collect();
            let mut txn = db.begin();
            for rid in &rids {
                txn.delete(&table, *rid)?;
            }
            txn.commit();
            Ok(QueryResult::Deleted(rids.len()))
        }
    }
}

/// Convert a `WHERE` expression on a single table into an engine predicate,
/// coercing literals to the column types (so `date = '2022-01-01'` works).
fn single_table_predicate(
    db: &Database,
    table: &str,
    expr: Option<&SqlExpr>,
) -> Result<Predicate> {
    let Some(expr) = expr else { return Ok(Predicate::True) };
    let schema = db.schema_of(table)?;
    fn convert(schema: &crate::schema::TableSchema, e: &SqlExpr) -> Result<Predicate> {
        Ok(match e {
            SqlExpr::Cmp { column, op, value } => {
                let idx = schema.require_column(&column.column)?;
                let coerced = coerce_literal_to(value, schema.columns()[idx].ty)?;
                Predicate::Cmp { column: column.column.clone(), op: *op, value: coerced }
            }
            SqlExpr::Like { column, pattern } => {
                Predicate::contains(column.column.clone(), pattern.clone())
            }
            SqlExpr::IsNull { column, negated } => {
                let p = Predicate::IsNull { column: column.column.clone() };
                if *negated {
                    p.not()
                } else {
                    p
                }
            }
            SqlExpr::And(a, b) => convert(schema, a)?.and(convert(schema, b)?),
            SqlExpr::Or(a, b) => convert(schema, a)?.or(convert(schema, b)?),
            SqlExpr::Not(a) => convert(schema, a)?.not(),
        })
    }
    convert(schema, expr)
}

fn coerce_literal_to(v: &Value, ty: DataType) -> Result<Value> {
    v.coerce_to(ty)
}

/// Column layout of a (possibly joined) row stream.
struct Layout {
    /// (table, column) per output position.
    cols: Vec<(String, String)>,
    /// Data types per position.
    types: Vec<DataType>,
}

impl Layout {
    fn resolve(&self, r: &ColumnRef) -> Result<usize> {
        let matches: Vec<usize> = self
            .cols
            .iter()
            .enumerate()
            .filter(|(_, (t, c))| {
                c == &r.column && r.table.as_ref().is_none_or(|rt| rt == t)
            })
            .map(|(i, _)| i)
            .collect();
        match matches.len() {
            1 => Ok(matches[0]),
            0 => Err(TxdbError::UnknownColumn {
                table: r.table.clone().unwrap_or_else(|| "<any>".into()),
                column: r.column.clone(),
            }),
            _ => Err(TxdbError::Parse(format!("ambiguous column reference `{r}`"))),
        }
    }
}

fn execute_select(db: &Database, sel: &SelectStmt) -> Result<ResultSet> {
    // Build the joined row stream with a layout.
    let base = db.table(&sel.table)?;
    let mut layout = Layout { cols: Vec::new(), types: Vec::new() };
    for c in base.schema().columns() {
        layout.cols.push((sel.table.clone(), c.name.clone()));
        layout.types.push(c.ty);
    }
    let mut rows: Vec<Vec<Value>> =
        base.scan().map(|(_, r)| r.values().to_vec()).collect();

    for join in &sel.joins {
        let right = db.table(&join.table)?;
        // Positions: left key must resolve in the current layout; right key
        // in the joined table.
        let (cur_ref, new_ref) = if join
            .left
            .table
            .as_deref()
            .is_some_and(|t| t == join.table)
        {
            (&join.right, &join.left)
        } else {
            (&join.left, &join.right)
        };
        let left_idx = layout.resolve(cur_ref)?;
        let right_idx = right.schema().require_column(&new_ref.column)?;
        let right_col_name = right.schema().columns()[right_idx].name.clone();
        let mut out = Vec::new();
        for row in rows {
            let key = &row[left_idx];
            if key.is_null() {
                continue;
            }
            for rid in right.lookup(&right_col_name, key) {
                let rrow = right.get(rid).expect("lookup returned live id");
                let mut combined = row.clone();
                combined.extend(rrow.values().iter().cloned());
                out.push(combined);
            }
        }
        rows = out;
        for c in right.schema().columns() {
            layout.cols.push((join.table.clone(), c.name.clone()));
            layout.types.push(c.ty);
        }
    }

    // WHERE filter.
    if let Some(expr) = &sel.where_clause {
        let mut filtered = Vec::with_capacity(rows.len());
        for row in rows {
            if eval_expr(&layout, expr, &row)? {
                filtered.push(row);
            }
        }
        rows = filtered;
    }

    // Aggregation path (any aggregate in the projection or a GROUP BY).
    if sel.projection.has_aggregates() || !sel.group_by.is_empty() {
        return execute_aggregation(sel, &layout, rows);
    }

    // ORDER BY.
    if let Some((col, desc)) = &sel.order_by {
        let idx = layout.resolve(col)?;
        rows.sort_by(|a, b| {
            let ord = a[idx].partial_cmp(&b[idx]).unwrap_or(std::cmp::Ordering::Equal);
            if *desc {
                ord.reverse()
            } else {
                ord
            }
        });
    }

    // LIMIT.
    if let Some(n) = sel.limit {
        rows.truncate(n);
    }

    // Projection.
    let qualified = !sel.joins.is_empty();
    let name_of = |i: usize| -> String {
        let (t, c) = &layout.cols[i];
        if qualified {
            format!("{t}.{c}")
        } else {
            c.clone()
        }
    };
    match &sel.projection {
        Projection::Star => Ok(ResultSet {
            columns: (0..layout.cols.len()).map(name_of).collect(),
            rows,
        }),
        Projection::Items(items) => {
            let cols: Vec<&ColumnRef> = items
                .iter()
                .map(|i| match i {
                    SelectItem::Column(c) => Ok(c),
                    SelectItem::Aggregate { .. } => unreachable!("handled above"),
                })
                .collect::<Result<_>>()?;
            let idxs: Vec<usize> =
                cols.iter().map(|c| layout.resolve(c)).collect::<Result<_>>()?;
            Ok(ResultSet {
                columns: idxs.iter().map(|&i| name_of(i)).collect(),
                rows: rows
                    .into_iter()
                    .map(|row| idxs.iter().map(|&i| row[i].clone()).collect())
                    .collect(),
            })
        }
    }
}

/// Grouped aggregation over the filtered row stream.
fn execute_aggregation(
    sel: &SelectStmt,
    layout: &Layout,
    rows: Vec<Vec<Value>>,
) -> Result<ResultSet> {
    use std::collections::BTreeMap;
    let Projection::Items(items) = &sel.projection else {
        return Err(TxdbError::Parse("SELECT * cannot be combined with GROUP BY".into()));
    };
    let group_idxs: Vec<usize> =
        sel.group_by.iter().map(|c| layout.resolve(c)).collect::<Result<_>>()?;
    // Validate: plain columns must appear in GROUP BY.
    for item in items {
        if let SelectItem::Column(c) = item {
            let idx = layout.resolve(c)?;
            if !group_idxs.contains(&idx) {
                return Err(TxdbError::Parse(format!(
                    "column `{c}` must appear in GROUP BY or inside an aggregate"
                )));
            }
        }
    }
    // Group rows. BTreeMap keys are not directly possible on Value (no Ord),
    // so key on the SQL-literal rendering (injective for our value types).
    let mut groups: BTreeMap<String, (Vec<Value>, Vec<Vec<Value>>)> = BTreeMap::new();
    for row in rows {
        let key_vals: Vec<Value> = group_idxs.iter().map(|&i| row[i].clone()).collect();
        let key: String =
            key_vals.iter().map(Value::to_sql_literal).collect::<Vec<_>>().join("\u{1}");
        groups.entry(key).or_insert_with(|| (key_vals, Vec::new())).1.push(row);
    }
    // A global aggregate over zero rows still yields one output row.
    if groups.is_empty() && group_idxs.is_empty() {
        groups.insert(String::new(), (Vec::new(), Vec::new()));
    }

    let qualified = !sel.joins.is_empty();
    let name_of_idx = |i: usize| -> String {
        let (t, c) = &layout.cols[i];
        if qualified {
            format!("{t}.{c}")
        } else {
            c.clone()
        }
    };
    let columns: Vec<String> = items
        .iter()
        .map(|item| match item {
            SelectItem::Column(c) => layout.resolve(c).map(name_of_idx),
            SelectItem::Aggregate { func, arg } => Ok(match arg {
                Some(c) => format!("{}({})", func.keyword(), c),
                None => format!("{}(*)", func.keyword()),
            }),
        })
        .collect::<Result<_>>()?;

    let mut out_rows = Vec::with_capacity(groups.len());
    for (_, (key_vals, group_rows)) in groups {
        let mut out = Vec::with_capacity(items.len());
        for item in items {
            match item {
                SelectItem::Column(c) => {
                    let idx = layout.resolve(c)?;
                    let pos = group_idxs.iter().position(|&g| g == idx).expect("validated");
                    out.push(key_vals[pos].clone());
                }
                SelectItem::Aggregate { func, arg } => {
                    out.push(compute_aggregate(*func, arg.as_ref(), layout, &group_rows)?);
                }
            }
        }
        out_rows.push(out);
    }

    // ORDER BY over output columns (group keys or aggregate names).
    if let Some((col, desc)) = &sel.order_by {
        let target = col.to_string();
        let idx = columns
            .iter()
            .position(|c| c == &target || c.ends_with(&format!(".{target}")))
            .ok_or_else(|| TxdbError::Parse(format!(
                "ORDER BY `{target}` must reference an output column of the aggregation"
            )))?;
        out_rows.sort_by(|a, b| {
            let ord = a[idx].partial_cmp(&b[idx]).unwrap_or(std::cmp::Ordering::Equal);
            if *desc {
                ord.reverse()
            } else {
                ord
            }
        });
    }
    if let Some(n) = sel.limit {
        out_rows.truncate(n);
    }
    Ok(ResultSet { columns, rows: out_rows })
}

fn compute_aggregate(
    func: AggFunc,
    arg: Option<&ColumnRef>,
    layout: &Layout,
    rows: &[Vec<Value>],
) -> Result<Value> {
    let values: Vec<&Value> = match arg {
        None => return Ok(Value::Int(rows.len() as i64)), // COUNT(*)
        Some(c) => {
            let idx = layout.resolve(c)?;
            rows.iter().map(|r| &r[idx]).filter(|v| !v.is_null()).collect()
        }
    };
    Ok(match func {
        AggFunc::Count => Value::Int(values.len() as i64),
        AggFunc::Sum | AggFunc::Avg => {
            let mut sum = 0.0;
            let mut all_int = true;
            for v in &values {
                match v {
                    Value::Int(i) => sum += *i as f64,
                    Value::Float(x) => {
                        all_int = false;
                        sum += x;
                    }
                    other => {
                        return Err(TxdbError::TypeMismatch {
                            expected: crate::value::DataType::Float,
                            got: format!("{other}"),
                            context: format!("{}()", func.keyword()),
                        })
                    }
                }
            }
            if func == AggFunc::Avg {
                if values.is_empty() {
                    Value::Null
                } else {
                    Value::Float(sum / values.len() as f64)
                }
            } else if all_int {
                Value::Int(sum as i64)
            } else {
                Value::Float(sum)
            }
        }
        AggFunc::Min => values
            .iter()
            .copied()
            .min_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal))
            .cloned()
            .unwrap_or(Value::Null),
        AggFunc::Max => values
            .iter()
            .copied()
            .max_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal))
            .cloned()
            .unwrap_or(Value::Null),
    })
}

fn eval_expr(layout: &Layout, expr: &SqlExpr, row: &[Value]) -> Result<bool> {
    Ok(match expr {
        SqlExpr::Cmp { column, op, value } => {
            let idx = layout.resolve(column)?;
            let cell = &row[idx];
            if cell.is_null() || value.is_null() {
                false
            } else {
                let coerced = value.coerce_to(layout.types[idx]).unwrap_or_else(|_| value.clone());
                op.eval(cell, &coerced).unwrap_or(false)
            }
        }
        SqlExpr::Like { column, pattern } => {
            let idx = layout.resolve(column)?;
            row[idx]
                .as_text()
                .is_some_and(|s| s.to_lowercase().contains(&pattern.to_lowercase()))
        }
        SqlExpr::IsNull { column, negated } => {
            let idx = layout.resolve(column)?;
            row[idx].is_null() != *negated
        }
        SqlExpr::And(a, b) => eval_expr(layout, a, row)? && eval_expr(layout, b, row)?,
        SqlExpr::Or(a, b) => eval_expr(layout, a, row)? || eval_expr(layout, b, row)?,
        SqlExpr::Not(a) => !eval_expr(layout, a, row)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> Database {
        let mut db = Database::new();
        execute_script(
            &mut db,
            "CREATE TABLE movie (movie_id INT PRIMARY KEY, title TEXT NOT NULL, genre TEXT, rating FLOAT);
             CREATE TABLE screening (screening_id INT PRIMARY KEY,
                                     movie_id INT NOT NULL REFERENCES movie(movie_id),
                                     date DATE NOT NULL, price FLOAT);
             INSERT INTO movie VALUES (1, 'Forrest Gump', 'Drama', 8.8),
                                      (2, 'Heat', 'Crime', 8.3),
                                      (3, 'Alien', 'Horror', 8.5);
             INSERT INTO screening VALUES (10, 1, '2022-03-26', 12.5),
                                          (11, 2, '2022-03-26', 10.0),
                                          (12, 2, '2022-03-27', 10.0);",
        )
        .unwrap();
        db
    }

    #[test]
    fn create_insert_select_roundtrip() {
        let mut db = setup();
        let r = execute(&mut db, "SELECT title FROM movie WHERE rating >= 8.5 ORDER BY title")
            .unwrap();
        let rs = r.rows().unwrap();
        assert_eq!(rs.columns, vec!["title"]);
        assert_eq!(rs.rows.len(), 2);
        assert_eq!(rs.rows[0][0], Value::Text("Alien".into()));
        assert_eq!(rs.rows[1][0], Value::Text("Forrest Gump".into()));
    }

    #[test]
    fn select_star_and_limit() {
        let mut db = setup();
        let r = execute(&mut db, "SELECT * FROM movie ORDER BY rating DESC LIMIT 1").unwrap();
        let rs = r.rows().unwrap();
        assert_eq!(rs.rows.len(), 1);
        assert_eq!(rs.rows[0][1], Value::Text("Forrest Gump".into()));
        assert_eq!(rs.column_index("genre"), Some(2));
    }

    #[test]
    fn join_produces_qualified_columns() {
        let mut db = setup();
        let r = execute(
            &mut db,
            "SELECT movie.title, screening.date FROM screening \
             JOIN movie ON screening.movie_id = movie.movie_id \
             WHERE movie.title = 'Heat' ORDER BY screening.date",
        )
        .unwrap();
        let rs = r.rows().unwrap();
        assert_eq!(rs.columns, vec!["movie.title", "screening.date"]);
        assert_eq!(rs.rows.len(), 2);
        assert_eq!(rs.rows[0][1].render(), "2022-03-26");
        assert_eq!(rs.column_index("date"), Some(1));
    }

    #[test]
    fn date_literals_coerced_in_where() {
        let mut db = setup();
        let r = execute(&mut db, "SELECT * FROM screening WHERE date = '2022-03-26'").unwrap();
        assert_eq!(r.rows().unwrap().rows.len(), 2);
        let r = execute(&mut db, "SELECT * FROM screening WHERE date > '2022-03-26'").unwrap();
        assert_eq!(r.rows().unwrap().rows.len(), 1);
    }

    #[test]
    fn update_and_delete() {
        let mut db = setup();
        let r = execute(&mut db, "UPDATE movie SET rating = 9.0 WHERE title = 'Heat'").unwrap();
        assert_eq!(r, QueryResult::Updated(1));
        let r = execute(&mut db, "SELECT rating FROM movie WHERE title = 'Heat'").unwrap();
        assert_eq!(r.rows().unwrap().rows[0][0], Value::Float(9.0));
        // Delete must respect FKs: movie 2 has screenings.
        assert!(execute(&mut db, "DELETE FROM movie WHERE movie_id = 2").is_err());
        let r = execute(&mut db, "DELETE FROM screening WHERE movie_id = 2").unwrap();
        assert_eq!(r, QueryResult::Deleted(2));
        let r = execute(&mut db, "DELETE FROM movie WHERE movie_id = 2").unwrap();
        assert_eq!(r, QueryResult::Deleted(1));
    }

    #[test]
    fn insert_respects_fk() {
        let mut db = setup();
        let err = execute(&mut db, "INSERT INTO screening VALUES (99, 42, '2022-01-01', 1.0)");
        assert!(err.is_err());
        // And the failed multi-row insert is atomic:
        let before = db.table("screening").unwrap().len();
        let err = execute(
            &mut db,
            "INSERT INTO screening VALUES (20, 1, '2022-01-01', 1.0), (21, 42, '2022-01-01', 1.0)",
        );
        assert!(err.is_err());
        assert_eq!(db.table("screening").unwrap().len(), before);
    }

    #[test]
    fn like_and_null_handling() {
        let mut db = setup();
        execute(&mut db, "INSERT INTO movie (movie_id, title) VALUES (4, 'Gump II')").unwrap();
        let r = execute(&mut db, "SELECT title FROM movie WHERE title LIKE '%gump%'").unwrap();
        assert_eq!(r.rows().unwrap().rows.len(), 2);
        let r = execute(&mut db, "SELECT title FROM movie WHERE rating IS NULL").unwrap();
        assert_eq!(r.rows().unwrap().rows.len(), 1);
        let r = execute(&mut db, "SELECT title FROM movie WHERE rating IS NOT NULL").unwrap();
        assert_eq!(r.rows().unwrap().rows.len(), 3);
    }

    #[test]
    fn ambiguous_column_is_error() {
        let mut db = setup();
        let err = execute(
            &mut db,
            "SELECT movie_id FROM screening JOIN movie ON screening.movie_id = movie.movie_id",
        );
        assert!(err.is_err());
    }

    #[test]
    fn count_star_and_count_column() {
        let mut db = setup();
        let r = execute(&mut db, "SELECT count(*) FROM movie").unwrap();
        let rs = r.rows().unwrap();
        assert_eq!(rs.columns, vec!["count(*)"]);
        assert_eq!(rs.rows, vec![vec![Value::Int(3)]]);
        // COUNT(col) skips NULLs.
        execute(&mut db, "INSERT INTO movie (movie_id, title) VALUES (9, 'NoRating')").unwrap();
        let r = execute(&mut db, "SELECT count(rating) FROM movie").unwrap();
        assert_eq!(r.rows().unwrap().rows[0][0], Value::Int(3));
        let r = execute(&mut db, "SELECT count(*) FROM movie").unwrap();
        assert_eq!(r.rows().unwrap().rows[0][0], Value::Int(4));
    }

    #[test]
    fn sum_avg_min_max() {
        let mut db = setup();
        let r = execute(&mut db, "SELECT min(rating), max(rating), avg(rating) FROM movie")
            .unwrap();
        let rs = r.rows().unwrap();
        assert_eq!(rs.rows[0][0], Value::Float(8.3));
        assert_eq!(rs.rows[0][1], Value::Float(8.8));
        let avg = rs.rows[0][2].as_float().unwrap();
        assert!((avg - (8.8 + 8.3 + 8.5) / 3.0).abs() < 1e-9);
        // SUM over ints stays integral.
        let r = execute(&mut db, "SELECT sum(movie_id) FROM movie").unwrap();
        assert_eq!(r.rows().unwrap().rows[0][0], Value::Int(6));
    }

    #[test]
    fn group_by_with_aggregates() {
        let mut db = setup();
        let r = execute(
            &mut db,
            "SELECT movie_id, count(*), sum(price) FROM screening              GROUP BY movie_id ORDER BY movie_id",
        )
        .unwrap();
        let rs = r.rows().unwrap();
        assert_eq!(rs.columns, vec!["movie_id", "count(*)", "sum(price)"]);
        assert_eq!(rs.rows.len(), 2);
        assert_eq!(rs.rows[0], vec![Value::Int(1), Value::Int(1), Value::Float(12.5)]);
        assert_eq!(rs.rows[1], vec![Value::Int(2), Value::Int(2), Value::Float(20.0)]);
    }

    #[test]
    fn group_by_over_join() {
        let mut db = setup();
        let r = execute(
            &mut db,
            "SELECT movie.title, count(*) FROM screening              JOIN movie ON screening.movie_id = movie.movie_id              GROUP BY movie.title ORDER BY title DESC",
        )
        .unwrap();
        let rs = r.rows().unwrap();
        assert_eq!(rs.rows.len(), 2);
        assert_eq!(rs.rows[0][0], Value::Text("Heat".into()));
        assert_eq!(rs.rows[0][1], Value::Int(2));
    }

    #[test]
    fn aggregate_validation_errors() {
        let mut db = setup();
        // Non-grouped plain column.
        assert!(execute(&mut db, "SELECT title, count(*) FROM movie").is_err());
        // star + group by
        assert!(execute(&mut db, "SELECT * FROM movie GROUP BY genre").is_err());
        // SUM over text.
        assert!(execute(&mut db, "SELECT sum(title) FROM movie").is_err());
        // Unknown function.
        assert!(execute(&mut db, "SELECT median(rating) FROM movie").is_err());
        // `*` only for COUNT.
        assert!(execute(&mut db, "SELECT sum(*) FROM movie").is_err());
    }

    #[test]
    fn aggregates_over_empty_input() {
        let mut db = setup();
        let r = execute(&mut db, "SELECT count(*), min(rating) FROM movie WHERE movie_id > 99")
            .unwrap();
        let rs = r.rows().unwrap();
        assert_eq!(rs.rows.len(), 1);
        assert_eq!(rs.rows[0][0], Value::Int(0));
        assert_eq!(rs.rows[0][1], Value::Null);
        // Grouped over empty input: no groups, no rows.
        let r = execute(
            &mut db,
            "SELECT genre, count(*) FROM movie WHERE movie_id > 99 GROUP BY genre",
        )
        .unwrap();
        assert!(r.rows().unwrap().rows.is_empty());
    }

    #[test]
    fn group_by_limit() {
        let mut db = setup();
        let r = execute(
            &mut db,
            "SELECT genre, count(*) FROM movie GROUP BY genre ORDER BY genre LIMIT 2",
        )
        .unwrap();
        assert_eq!(r.rows().unwrap().rows.len(), 2);
    }

    #[test]
    fn script_splitting_respects_strings() {
        let mut db = Database::new();
        let results = execute_script(
            &mut db,
            "CREATE TABLE t (id INT PRIMARY KEY, s TEXT);
             INSERT INTO t VALUES (1, 'semi;colon');",
        )
        .unwrap();
        assert_eq!(results.len(), 2);
        let r = execute(&mut db, "SELECT s FROM t").unwrap();
        assert_eq!(r.rows().unwrap().rows[0][0], Value::Text("semi;colon".into()));
    }
}
