//! Executor for the SQL subset.
//!
//! `SELECT` runs through the cost-aware planner in [`super::plan`] and
//! is then lowered into the physical operator tree of [`super::ops`]:
//! the base table is reached via the chosen access path (`Scan` /
//! `IndexScan`), base-only predicates filter before joins multiply rows
//! (`Filter`), joins execute in the planner's cardinality-greedy order
//! through per-strategy operators, and the row stream stays borrowed
//! (`&Row` per table) until `Project` — values are only cloned into the
//! result set at the very end. `ORDER BY ... LIMIT k` lowers to a fused
//! `TopK` keeping a bounded binary heap of `k` entries instead of
//! sorting everything; `GROUP BY` keys on [`OrdKey`] tuples instead of
//! rendered strings. When the planner grants a base fetch or a hash
//! build more than one worker (`PlanOptions::worker_threads`, rows above
//! the parallel threshold), the lowered tree swaps in the morsel-driven
//! leaf of [`super::ops`]'s `Exchange` / the parallel build path —
//! scoped worker threads over contiguous morsels whose partial outputs
//! merge back into the canonical ascending-RowId order, so parallel
//! execution stays byte-identical to `worker_threads = 1`. This module
//! keeps statement dispatch, script splitting and the `plan → lower →
//! drive` glue; the per-operator execution logic lives in [`super::ops`].
//!
//! Join reordering is invisible in results: both executors traverse index
//! buckets in ascending-RowId order, which makes the reference output the
//! lexicographic order of FROM-order RowId tuples — exactly the order the
//! planned path restores after executing joins in a different sequence.
//!
//! [`execute_select_reference`] retains the naive
//! materialize-everything implementation as an executable specification:
//! the differential test suite asserts both paths agree on every
//! generated query.

use std::collections::BTreeMap;

use crate::database::Database;
use crate::error::{Result, TxdbError};
use crate::index::OrdKey;
use crate::predicate::Predicate;
use crate::row::{Row, RowId};
use crate::table::Table;
use crate::value::{DataType, Value};

use super::ast::{Projection, SelectItem, SelectStmt, SqlExpr, Statement};
use super::budget::ExecBudget;
use super::ops;
use super::ops::expr::{is_qualified_suffix, join_key_excluded, slot_name};
use super::ops::{aggregate_values, sort_aggregated_output};
use super::parser::parse_statement;
use super::plan::{plan_select_with, Layout, PlanOptions};

/// Tabular result of a `SELECT`.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultSet {
    /// Output column names (qualified as `table.column` for joins).
    pub columns: Vec<String>,
    pub rows: Vec<Vec<Value>>,
}

impl ResultSet {
    /// Index of an output column (exact match first, then suffix match on
    /// the unqualified name).
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == name).or_else(|| {
            self.columns
                .iter()
                .position(|c| is_qualified_suffix(c, name))
        })
    }
}

/// Outcome of executing one statement.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryResult {
    /// `CREATE TABLE` succeeded.
    Created,
    /// Number of rows inserted.
    Inserted(usize),
    /// Number of rows updated.
    Updated(usize),
    /// Number of rows deleted.
    Deleted(usize),
    /// Rows returned by a `SELECT`.
    Rows(ResultSet),
    /// `BEGIN` opened an explicit transaction (sessions only).
    Begun,
    /// `COMMIT` published the open transaction.
    Committed,
    /// `ROLLBACK` discarded the open transaction.
    RolledBack,
    /// `CHECKPOINT` wrote a snapshot and truncated the change log.
    Checkpointed,
}

impl QueryResult {
    /// The result set, if this was a `SELECT`.
    pub fn rows(&self) -> Option<&ResultSet> {
        match self {
            QueryResult::Rows(rs) => Some(rs),
            _ => None,
        }
    }
}

/// Parse and execute one statement.
pub fn execute(db: &mut Database, sql: &str) -> Result<QueryResult> {
    let stmt = parse_statement(sql)?;
    execute_statement(db, stmt)
}

/// Execute a whole script: statements separated by `;`. Returns the result
/// of each statement. Statement boundaries respect string literals.
pub fn execute_script(db: &mut Database, script: &str) -> Result<Vec<QueryResult>> {
    let mut results = Vec::new();
    for stmt_text in split_statements(script) {
        let trimmed = stmt_text.trim();
        if trimmed.is_empty() {
            continue;
        }
        results.push(execute(db, trimmed)?);
    }
    Ok(results)
}

/// Split on `;` outside string literals. Statements are contiguous slices
/// of the input, so this borrows instead of building per-statement
/// `String`s — a single-statement script allocates nothing.
fn split_statements(script: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut start = 0usize;
    let mut in_string = false;
    let mut prev_quote = false; // last char was a quote that may pair up
    for (i, c) in script.char_indices() {
        if in_string {
            if c == '\'' {
                if prev_quote {
                    // Escaped '' inside the literal: stay in the string.
                    prev_quote = false;
                } else {
                    prev_quote = true;
                }
            } else if prev_quote {
                // The quote closed the literal and `c` is ordinary text.
                in_string = false;
                prev_quote = false;
                if c == ';' {
                    out.push(&script[start..i]);
                    start = i + 1;
                }
            }
        } else {
            match c {
                '\'' => in_string = true,
                ';' => {
                    out.push(&script[start..i]);
                    start = i + 1;
                }
                _ => {}
            }
        }
    }
    let tail = &script[start..];
    if !tail.trim().is_empty() {
        out.push(tail);
    }
    out
}

fn execute_statement(db: &mut Database, stmt: Statement) -> Result<QueryResult> {
    match stmt {
        Statement::CreateTable(schema) => {
            db.create_table(schema)?;
            Ok(QueryResult::Created)
        }
        Statement::Insert {
            table,
            columns,
            rows,
        } => {
            let schema = db.schema_of(&table)?.clone();
            let mut txn = db.begin();
            let mut n = 0;
            for literal_row in rows {
                let cells = coerce_insert_row(&schema, &table, columns.as_ref(), literal_row)?;
                txn.insert(&table, Row::new(cells))?;
                n += 1;
            }
            txn.try_commit()?;
            Ok(QueryResult::Inserted(n))
        }
        Statement::Select(sel) => execute_select(db, &sel).map(QueryResult::Rows),
        Statement::Explain { analyze, select } => {
            explain_select_with(db, &select, &PlanOptions::default(), analyze)
                .map(QueryResult::Rows)
        }
        Statement::Update {
            table,
            set,
            where_clause,
        } => {
            let pred = single_table_predicate(db, &table, where_clause.as_ref())?;
            let rids: Vec<RowId> = db
                .select(&table, &pred)?
                .into_iter()
                .map(|(r, _)| r)
                .collect();
            let schema = db.schema_of(&table)?.clone();
            let mut txn = db.begin();
            for rid in &rids {
                for (col, v) in &set {
                    let idx = schema.require_column(col)?;
                    let coerced = coerce_literal_to(v, schema.columns()[idx].ty)?;
                    txn.update(&table, *rid, col, coerced)?;
                }
            }
            txn.try_commit()?;
            Ok(QueryResult::Updated(rids.len()))
        }
        Statement::Delete {
            table,
            where_clause,
        } => {
            let pred = single_table_predicate(db, &table, where_clause.as_ref())?;
            let rids: Vec<RowId> = db
                .select(&table, &pred)?
                .into_iter()
                .map(|(r, _)| r)
                .collect();
            let mut txn = db.begin();
            for rid in &rids {
                txn.delete(&table, *rid)?;
            }
            txn.try_commit()?;
            Ok(QueryResult::Deleted(rids.len()))
        }
        Statement::Begin | Statement::Commit | Statement::Rollback => Err(TxdbError::InvalidValue(
            "transaction control statements require a session — use Session::execute".into(),
        )),
        Statement::Checkpoint => {
            db.checkpoint()?;
            Ok(QueryResult::Checkpointed)
        }
    }
}

/// Coerce one `INSERT` literal row to the table's schema, honoring an
/// optional explicit column list (unlisted columns become NULL).
fn coerce_insert_row(
    schema: &crate::schema::TableSchema,
    table: &str,
    columns: Option<&Vec<String>>,
    literal_row: Vec<Value>,
) -> Result<Vec<Value>> {
    match columns {
        None => {
            if literal_row.len() != schema.arity() {
                return Err(TxdbError::ArityMismatch {
                    table: table.to_string(),
                    expected: schema.arity(),
                    got: literal_row.len(),
                });
            }
            literal_row
                .into_iter()
                .zip(schema.columns())
                .map(|(v, c)| coerce_literal_to(&v, c.ty))
                .collect()
        }
        Some(cols) => {
            let mut cells = vec![Value::Null; schema.arity()];
            if cols.len() != literal_row.len() {
                return Err(TxdbError::ArityMismatch {
                    table: table.to_string(),
                    expected: cols.len(),
                    got: literal_row.len(),
                });
            }
            for (col, v) in cols.iter().zip(literal_row) {
                let idx = schema.require_column(col)?;
                cells[idx] = coerce_literal_to(&v, schema.columns()[idx].ty)?;
            }
            Ok(cells)
        }
    }
}

// ===== sessions: explicit transactions over SQL =====

/// A SQL session holding at most one open explicit transaction.
///
/// `BEGIN` opens a transaction whose [`Snapshot`](crate::Snapshot) pins
/// every subsequent read until `COMMIT` or `ROLLBACK`: statements inside
/// the transaction see its own writes plus the state committed before it
/// began, and nothing that commits concurrently. Any statement error
/// inside an open transaction aborts and rolls back the *whole*
/// transaction (PostgreSQL-style), so partial transactional state never
/// leaks.
#[derive(Debug, Default)]
pub struct Session {
    txn: Option<u64>,
}

impl Session {
    /// A session with no open transaction.
    pub fn new() -> Session {
        Session::default()
    }

    /// The open transaction's id, if any.
    pub fn open_txn(&self) -> Option<u64> {
        self.txn
    }

    /// Parse and execute one statement within this session.
    pub fn execute(&mut self, db: &mut Database, sql: &str) -> Result<QueryResult> {
        let stmt = parse_statement(sql)?;
        match stmt {
            Statement::Begin => {
                if self.txn.is_some() {
                    return Err(TxdbError::Aborted("a transaction is already open".into()));
                }
                self.txn = Some(db.txn_begin());
                Ok(QueryResult::Begun)
            }
            Statement::Commit => {
                let txn = self
                    .txn
                    .take()
                    .ok_or_else(|| TxdbError::Aborted("no open transaction to commit".into()))?;
                db.txn_commit(txn)?;
                Ok(QueryResult::Committed)
            }
            Statement::Rollback => {
                let txn = self
                    .txn
                    .take()
                    .ok_or_else(|| TxdbError::Aborted("no open transaction to roll back".into()))?;
                db.txn_rollback(txn)?;
                Ok(QueryResult::RolledBack)
            }
            stmt => match self.txn {
                None => execute_statement(db, stmt),
                Some(txn) => {
                    let result = execute_statement_in(db, stmt, txn);
                    if result.is_err() {
                        // Whole-transaction abort: the failed statement
                        // may have applied part of its writes.
                        self.txn = None;
                        let _ = db.txn_rollback(txn);
                    }
                    result
                }
            },
        }
    }
}

/// Execute one non-control statement inside the open transaction `txn`.
fn execute_statement_in(db: &mut Database, stmt: Statement, txn: u64) -> Result<QueryResult> {
    match stmt {
        Statement::CreateTable(_) => Err(TxdbError::InvalidValue(
            "DDL is not transactional — COMMIT or ROLLBACK first".into(),
        )),
        Statement::Insert {
            table,
            columns,
            rows,
        } => {
            let schema = db.schema_of(&table)?.clone();
            let mut n = 0;
            for literal_row in rows {
                let cells = coerce_insert_row(&schema, &table, columns.as_ref(), literal_row)?;
                db.txn_insert(txn, &table, Row::new(cells))?;
                n += 1;
            }
            Ok(QueryResult::Inserted(n))
        }
        Statement::Select(sel) => {
            let snap = db.txn_snapshot(txn)?;
            execute_select_at(db, &sel, &PlanOptions::default(), Some(&snap)).map(QueryResult::Rows)
        }
        Statement::Explain { analyze, select } => {
            // EXPLAIN inspects the plan, not transactional state; ANALYZE
            // additionally runs the tree against latest-committed
            // visibility (the session's own uncommitted writes are not
            // re-planned).
            explain_select_with(db, &select, &PlanOptions::default(), analyze)
                .map(QueryResult::Rows)
        }
        Statement::Update {
            table,
            set,
            where_clause,
        } => {
            let pred = single_table_predicate(db, &table, where_clause.as_ref())?;
            let rids: Vec<RowId> = db
                .txn_select(txn, &table, &pred)?
                .into_iter()
                .map(|(r, _)| r)
                .collect();
            let schema = db.schema_of(&table)?.clone();
            for rid in &rids {
                for (col, v) in &set {
                    let idx = schema.require_column(col)?;
                    let coerced = coerce_literal_to(v, schema.columns()[idx].ty)?;
                    db.txn_update(txn, &table, *rid, col, coerced)?;
                }
            }
            Ok(QueryResult::Updated(rids.len()))
        }
        Statement::Delete {
            table,
            where_clause,
        } => {
            let pred = single_table_predicate(db, &table, where_clause.as_ref())?;
            let rids: Vec<RowId> = db
                .txn_select(txn, &table, &pred)?
                .into_iter()
                .map(|(r, _)| r)
                .collect();
            for rid in &rids {
                db.txn_delete(txn, &table, *rid)?;
            }
            Ok(QueryResult::Deleted(rids.len()))
        }
        Statement::Begin | Statement::Commit | Statement::Rollback => {
            unreachable!("control statements handled by Session::execute")
        }
        // The session's own transaction is active by definition here, so
        // a checkpoint can never proceed. Refuse up front (the session
        // aborts the transaction on any statement error, and silently
        // rolling back the user's work over a checkpoint would be worse).
        Statement::Checkpoint => Err(TxdbError::ActiveTransactions {
            operation: "checkpoint".into(),
            count: db.txns().active_count(),
        }),
    }
}

/// Convert a `WHERE` expression on a single table into an engine predicate,
/// coercing literals to the column types (so `date = '2022-01-01'` works).
fn single_table_predicate(db: &Database, table: &str, expr: Option<&SqlExpr>) -> Result<Predicate> {
    let Some(expr) = expr else {
        return Ok(Predicate::True);
    };
    let schema = db.schema_of(table)?;
    fn convert(schema: &crate::schema::TableSchema, e: &SqlExpr) -> Result<Predicate> {
        Ok(match e {
            SqlExpr::Cmp { column, op, value } => {
                let idx = schema.require_column(&column.column)?;
                let coerced = coerce_literal_to(value, schema.columns()[idx].ty)?;
                Predicate::Cmp {
                    column: column.column.clone(),
                    op: *op,
                    value: coerced,
                }
            }
            SqlExpr::Like { column, pattern } => {
                Predicate::contains(column.column.clone(), pattern.clone())
            }
            SqlExpr::IsNull { column, negated } => {
                let p = Predicate::IsNull {
                    column: column.column.clone(),
                };
                if *negated {
                    p.not()
                } else {
                    p
                }
            }
            SqlExpr::And(a, b) => convert(schema, a)?.and(convert(schema, b)?),
            SqlExpr::Or(a, b) => convert(schema, a)?.or(convert(schema, b)?),
            SqlExpr::Not(a) => convert(schema, a)?.not(),
        })
    }
    convert(schema, expr)
}

fn coerce_literal_to(v: &Value, ty: DataType) -> Result<Value> {
    v.coerce_to(ty)
}

// ===== planned execution: plan → lower → drive =====

/// Execute a `SELECT` with the default (fully enabled) planner.
fn execute_select(db: &Database, sel: &SelectStmt) -> Result<ResultSet> {
    execute_select_with(db, sel, &PlanOptions::default())
}

/// Execute a `SELECT` under explicit planner options — used by benchmarks
/// and differential tests to compare optimizer generations on identical
/// executor code. A [`PlanOptions::memory_budget`] materializes as an
/// [`ExecBudget`] guard threaded through the whole execution.
pub fn execute_select_with(
    db: &Database,
    sel: &SelectStmt,
    opts: &PlanOptions,
) -> Result<ResultSet> {
    execute_select_at(db, sel, opts, None)
}

/// [`execute_select_with`] pinned to a [`Snapshot`](crate::txn::Snapshot): every row access
/// resolves through MVCC visibility against `snap`, so two calls with
/// the same snapshot return identical results regardless of concurrent
/// committed writes. `None` reads latest-committed state — on tables
/// without version chains that is exactly the pre-MVCC fast path, so
/// existing call sites stay byte-identical.
pub fn execute_select_at(
    db: &Database,
    sel: &SelectStmt,
    opts: &PlanOptions,
    snap: Option<&crate::txn::Snapshot>,
) -> Result<ResultSet> {
    let budget = ExecBudget::from_options(opts);
    execute_select_budgeted(db, sel, opts, &budget, snap)
}

/// [`execute_select_at`] against a caller-supplied budget guard. Tests
/// inject fault-carrying or instrumented budgets here to observe peak
/// tracked bytes and to force mid-join exhaustion.
fn execute_select_budgeted(
    db: &Database,
    sel: &SelectStmt,
    opts: &PlanOptions,
    budget: &ExecBudget,
    snap: Option<&crate::txn::Snapshot>,
) -> Result<ResultSet> {
    let plan = plan_select_with(db, sel, opts)?;
    let mut root = ops::lower(db, sel, &plan, budget, snap)?;
    ops::drive(root.as_mut())
}

/// `EXPLAIN [ANALYZE]`: plan and lower the statement, optionally execute
/// it, and render the operator tree as a one-column result set. Plain
/// `EXPLAIN` annotates each node with the planner's cardinality
/// estimate; `ANALYZE` also runs the tree and adds the actual row count
/// and the node's own budget peak (excluding its children's work).
pub fn explain_select_with(
    db: &Database,
    sel: &SelectStmt,
    opts: &PlanOptions,
    analyze: bool,
) -> Result<ResultSet> {
    let budget = ExecBudget::from_options(opts);
    let plan = plan_select_with(db, sel, opts)?;
    let mut root = ops::lower(db, sel, &plan, &budget, None)?;
    if analyze {
        ops::drive(root.as_mut())?;
    }
    let rows = ops::render(root.as_ref(), analyze)
        .into_iter()
        .map(|line| vec![Value::Text(line)])
        .collect();
    Ok(ResultSet {
        columns: vec!["plan".into()],
        rows,
    })
}

// ===== reference execution (naive, materializing) =====

/// The pre-planner `SELECT` implementation: materialize the base table,
/// join by cloning combined rows, evaluate `WHERE` after joins, full-sort
/// for `ORDER BY`. Kept as an executable specification — the differential
/// tests run every query through both this and the planned path and
/// require identical results. Not used by `execute`.
pub fn execute_select_reference(db: &Database, sel: &SelectStmt) -> Result<ResultSet> {
    execute_select_reference_at(db, sel, None)
}

/// [`execute_select_reference`] pinned to a [`Snapshot`](crate::txn::Snapshot) — the
/// executable specification of snapshot reads. Resolution mirrors the
/// planned path: an explicit snapshot pins every access; otherwise
/// MVCC-dirty tables force the latest-committed snapshot and clean
/// tables keep the original newest-version code path untouched.
pub fn execute_select_reference_at(
    db: &Database,
    sel: &SelectStmt,
    snap: Option<&crate::txn::Snapshot>,
) -> Result<ResultSet> {
    let resolved: Option<crate::txn::Snapshot> = match snap {
        Some(s) => Some(s.clone()),
        None => {
            let mut dirty = !db.table(&sel.table)?.mvcc_clean();
            for join in &sel.joins {
                if dirty {
                    break;
                }
                dirty = !db.table(&join.table)?.mvcc_clean();
            }
            dirty.then(|| db.snapshot())
        }
    };
    let layout = Layout::build(db, sel)?;
    let base = db.table(&sel.table)?;
    let mut rows: Vec<Vec<Value>> = match resolved.as_ref().filter(|_| !base.mvcc_clean()) {
        Some(s) => base
            .scan()
            .filter_map(|(rid, _)| base.visible_row(rid, s))
            .map(|r| r.values().to_vec())
            .collect(),
        None => base.scan().map(|(_, r)| r.values().to_vec()).collect(),
    };

    for (ji, join) in sel.joins.iter().enumerate() {
        let right: &Table = db.table(&join.table)?;
        let (cur_ref, new_ref) = if join.left.table.as_deref().is_some_and(|t| t == join.table) {
            (&join.right, &join.left)
        } else {
            (&join.left, &join.right)
        };
        let left_idx = layout.resolve_prefix(cur_ref, ji + 1)?;
        let right_idx = right.schema().require_column(&new_ref.column)?;
        let right_col_name = right.schema().columns()[right_idx].name.clone();
        // Ascending-RowId bucket order: the canonical join order both
        // executors share — it makes the nested-loop output the
        // lexicographic order of FROM-order RowId tuples, which the
        // planned path restores after reordering joins. Hash-index
        // buckets are maintained sorted and borrowed in place; an
        // unindexed join column gets a build-side map in one scan (same
        // NULL/NaN key exclusion), never a scan per outer row. A
        // version-carrying right table always gets the map, keyed on
        // *visible* cells (index buckets are version supersets).
        let visible = resolved.as_ref().filter(|_| !right.mvcc_clean());
        let build_map = match visible {
            Some(s) => Some(right.join_map_visible(&right_col_name, s)?),
            None if right.has_index(&right_col_name) => None,
            None => Some(right.join_map(&right_col_name)?),
        };
        let mut out = Vec::new();
        for row in rows {
            let key = &row[left_idx];
            if join_key_excluded(key) {
                continue;
            }
            let bucket: &[RowId] = match &build_map {
                Some(map) => map.get(key).map_or(&[][..], Vec::as_slice),
                None => right
                    .index_bucket(&right_col_name, key)
                    .expect("hash index presence checked above"),
            };
            for &rid in bucket {
                let rrow = match visible {
                    Some(s) => right
                        .visible_row(rid, s)
                        .expect("visible join map only holds visible ids"),
                    None => right.get(rid).expect("lookup returned live id"),
                };
                let mut combined = row.clone();
                combined.extend(rrow.values().iter().cloned());
                out.push(combined);
            }
        }
        rows = out;
    }

    // WHERE filter, after joins.
    if let Some(expr) = &sel.where_clause {
        let mut filtered = Vec::with_capacity(rows.len());
        for row in rows {
            if eval_expr_materialized(&layout, expr, &row)? {
                filtered.push(row);
            }
        }
        rows = filtered;
    }

    if sel.projection.has_aggregates() || !sel.group_by.is_empty() {
        return execute_aggregation_reference(sel, &layout, rows);
    }

    // ORDER BY: full stable sort with the canonical comparator.
    if let Some((col, desc)) = &sel.order_by {
        let idx = layout.resolve(col)?;
        rows.sort_by(|a, b| {
            let ord = OrdKey::cmp_values(&a[idx], &b[idx]);
            if *desc {
                ord.reverse()
            } else {
                ord
            }
        });
    }

    if let Some(n) = sel.limit {
        rows.truncate(n);
    }

    let qualified = !sel.joins.is_empty();
    match &sel.projection {
        Projection::Star => Ok(ResultSet {
            columns: (0..layout.slots.len())
                .map(|i| slot_name(&layout, qualified, i))
                .collect(),
            rows,
        }),
        Projection::Items(items) => {
            let idxs: Vec<usize> = items
                .iter()
                .map(|i| match i {
                    SelectItem::Column(c) => layout.resolve(c),
                    SelectItem::Aggregate { .. } => unreachable!("handled above"),
                })
                .collect::<Result<_>>()?;
            Ok(ResultSet {
                columns: idxs
                    .iter()
                    .map(|&i| slot_name(&layout, qualified, i))
                    .collect(),
                rows: rows
                    .into_iter()
                    .map(|row| idxs.iter().map(|&i| row[i].clone()).collect())
                    .collect(),
            })
        }
    }
}

fn eval_expr_materialized(layout: &Layout, expr: &SqlExpr, row: &[Value]) -> Result<bool> {
    Ok(match expr {
        SqlExpr::Cmp { column, op, value } => {
            let idx = layout.resolve(column)?;
            let cv = &row[idx];
            if cv.is_null() || value.is_null() {
                false
            } else {
                let coerced = value
                    .coerce_to(layout.slots[idx].ty)
                    .unwrap_or_else(|_| value.clone());
                op.eval(cv, &coerced).unwrap_or(false)
            }
        }
        SqlExpr::Like { column, pattern } => {
            let idx = layout.resolve(column)?;
            row[idx]
                .as_text()
                .is_some_and(|s| s.to_lowercase().contains(&pattern.to_lowercase()))
        }
        SqlExpr::IsNull { column, negated } => {
            let idx = layout.resolve(column)?;
            row[idx].is_null() != *negated
        }
        SqlExpr::And(a, b) => {
            eval_expr_materialized(layout, a, row)? && eval_expr_materialized(layout, b, row)?
        }
        SqlExpr::Or(a, b) => {
            eval_expr_materialized(layout, a, row)? || eval_expr_materialized(layout, b, row)?
        }
        SqlExpr::Not(a) => !eval_expr_materialized(layout, a, row)?,
    })
}

/// Naive grouped aggregation over materialized rows (same OrdKey group
/// order as the planned path, so outputs are directly comparable).
fn execute_aggregation_reference(
    sel: &SelectStmt,
    layout: &Layout,
    rows: Vec<Vec<Value>>,
) -> Result<ResultSet> {
    let Projection::Items(items) = &sel.projection else {
        return Err(TxdbError::Parse(
            "SELECT * cannot be combined with GROUP BY".into(),
        ));
    };
    let group_idxs: Vec<usize> = sel
        .group_by
        .iter()
        .map(|c| layout.resolve(c))
        .collect::<Result<_>>()?;
    for item in items {
        if let SelectItem::Column(c) = item {
            let idx = layout.resolve(c)?;
            if !group_idxs.contains(&idx) {
                return Err(TxdbError::Parse(format!(
                    "column `{c}` must appear in GROUP BY or inside an aggregate"
                )));
            }
        }
    }
    let mut groups: BTreeMap<Vec<OrdKey>, Vec<Vec<Value>>> = BTreeMap::new();
    for row in rows {
        let key: Vec<OrdKey> = group_idxs.iter().map(|&i| OrdKey(row[i].clone())).collect();
        groups.entry(key).or_default().push(row);
    }
    if groups.is_empty() && group_idxs.is_empty() {
        groups.insert(Vec::new(), Vec::new());
    }

    let qualified = !sel.joins.is_empty();
    let columns: Vec<String> = items
        .iter()
        .map(|item| match item {
            SelectItem::Column(c) => layout.resolve(c).map(|p| slot_name(layout, qualified, p)),
            SelectItem::Aggregate { func, arg } => Ok(match arg {
                Some(c) => format!("{}({})", func.keyword(), c),
                None => format!("{}(*)", func.keyword()),
            }),
        })
        .collect::<Result<_>>()?;

    let mut out_rows = Vec::with_capacity(groups.len());
    for (key, group_rows) in &groups {
        let mut out = Vec::with_capacity(items.len());
        for item in items {
            match item {
                SelectItem::Column(c) => {
                    let idx = layout.resolve(c)?;
                    let pos = group_idxs
                        .iter()
                        .position(|&g| g == idx)
                        .expect("validated");
                    out.push(key[pos].0.clone());
                }
                SelectItem::Aggregate { func, arg } => match arg {
                    None => out.push(Value::Int(group_rows.len() as i64)),
                    Some(c) => {
                        let idx = layout.resolve(c)?;
                        let values: Vec<&Value> = group_rows
                            .iter()
                            .map(|r| &r[idx])
                            .filter(|v| !v.is_null())
                            .collect();
                        out.push(aggregate_values(*func, &values)?);
                    }
                },
            }
        }
        out_rows.push(out);
    }

    sort_aggregated_output(sel, &columns, &mut out_rows)?;
    if let Some(n) = sel.limit {
        out_rows.truncate(n);
    }
    Ok(ResultSet {
        columns,
        rows: out_rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sql::plan::plan_select;

    fn setup() -> Database {
        let mut db = Database::new();
        execute_script(
            &mut db,
            "CREATE TABLE movie (movie_id INT PRIMARY KEY, title TEXT NOT NULL, genre TEXT, rating FLOAT);
             CREATE TABLE screening (screening_id INT PRIMARY KEY,
                                     movie_id INT NOT NULL REFERENCES movie(movie_id),
                                     date DATE NOT NULL, price FLOAT);
             INSERT INTO movie VALUES (1, 'Forrest Gump', 'Drama', 8.8),
                                      (2, 'Heat', 'Crime', 8.3),
                                      (3, 'Alien', 'Horror', 8.5);
             INSERT INTO screening VALUES (10, 1, '2022-03-26', 12.5),
                                          (11, 2, '2022-03-26', 10.0),
                                          (12, 2, '2022-03-27', 10.0);",
        )
        .unwrap();
        db
    }

    #[test]
    fn create_insert_select_roundtrip() {
        let mut db = setup();
        let r = execute(
            &mut db,
            "SELECT title FROM movie WHERE rating >= 8.5 ORDER BY title",
        )
        .unwrap();
        let rs = r.rows().unwrap();
        assert_eq!(rs.columns, vec!["title"]);
        assert_eq!(rs.rows.len(), 2);
        assert_eq!(rs.rows[0][0], Value::Text("Alien".into()));
        assert_eq!(rs.rows[1][0], Value::Text("Forrest Gump".into()));
    }

    #[test]
    fn select_star_and_limit() {
        let mut db = setup();
        let r = execute(&mut db, "SELECT * FROM movie ORDER BY rating DESC LIMIT 1").unwrap();
        let rs = r.rows().unwrap();
        assert_eq!(rs.rows.len(), 1);
        assert_eq!(rs.rows[0][1], Value::Text("Forrest Gump".into()));
        assert_eq!(rs.column_index("genre"), Some(2));
    }

    #[test]
    fn join_produces_qualified_columns() {
        let mut db = setup();
        let r = execute(
            &mut db,
            "SELECT movie.title, screening.date FROM screening \
             JOIN movie ON screening.movie_id = movie.movie_id \
             WHERE movie.title = 'Heat' ORDER BY screening.date",
        )
        .unwrap();
        let rs = r.rows().unwrap();
        assert_eq!(rs.columns, vec!["movie.title", "screening.date"]);
        assert_eq!(rs.rows.len(), 2);
        assert_eq!(rs.rows[0][1].render(), "2022-03-26");
        assert_eq!(rs.column_index("date"), Some(1));
    }

    #[test]
    fn date_literals_coerced_in_where() {
        let mut db = setup();
        let r = execute(&mut db, "SELECT * FROM screening WHERE date = '2022-03-26'").unwrap();
        assert_eq!(r.rows().unwrap().rows.len(), 2);
        let r = execute(&mut db, "SELECT * FROM screening WHERE date > '2022-03-26'").unwrap();
        assert_eq!(r.rows().unwrap().rows.len(), 1);
    }

    #[test]
    fn update_and_delete() {
        let mut db = setup();
        let r = execute(
            &mut db,
            "UPDATE movie SET rating = 9.0 WHERE title = 'Heat'",
        )
        .unwrap();
        assert_eq!(r, QueryResult::Updated(1));
        let r = execute(&mut db, "SELECT rating FROM movie WHERE title = 'Heat'").unwrap();
        assert_eq!(r.rows().unwrap().rows[0][0], Value::Float(9.0));
        // Delete must respect FKs: movie 2 has screenings.
        assert!(execute(&mut db, "DELETE FROM movie WHERE movie_id = 2").is_err());
        let r = execute(&mut db, "DELETE FROM screening WHERE movie_id = 2").unwrap();
        assert_eq!(r, QueryResult::Deleted(2));
        let r = execute(&mut db, "DELETE FROM movie WHERE movie_id = 2").unwrap();
        assert_eq!(r, QueryResult::Deleted(1));
    }

    #[test]
    fn insert_respects_fk() {
        let mut db = setup();
        let err = execute(
            &mut db,
            "INSERT INTO screening VALUES (99, 42, '2022-01-01', 1.0)",
        );
        assert!(err.is_err());
        // And the failed multi-row insert is atomic:
        let before = db.table("screening").unwrap().len();
        let err = execute(
            &mut db,
            "INSERT INTO screening VALUES (20, 1, '2022-01-01', 1.0), (21, 42, '2022-01-01', 1.0)",
        );
        assert!(err.is_err());
        assert_eq!(db.table("screening").unwrap().len(), before);
    }

    #[test]
    fn like_and_null_handling() {
        let mut db = setup();
        execute(
            &mut db,
            "INSERT INTO movie (movie_id, title) VALUES (4, 'Gump II')",
        )
        .unwrap();
        let r = execute(&mut db, "SELECT title FROM movie WHERE title LIKE '%gump%'").unwrap();
        assert_eq!(r.rows().unwrap().rows.len(), 2);
        let r = execute(&mut db, "SELECT title FROM movie WHERE rating IS NULL").unwrap();
        assert_eq!(r.rows().unwrap().rows.len(), 1);
        let r = execute(&mut db, "SELECT title FROM movie WHERE rating IS NOT NULL").unwrap();
        assert_eq!(r.rows().unwrap().rows.len(), 3);
    }

    #[test]
    fn ambiguous_column_is_error() {
        let mut db = setup();
        let err = execute(
            &mut db,
            "SELECT movie_id FROM screening JOIN movie ON screening.movie_id = movie.movie_id",
        );
        assert!(err.is_err());
    }

    #[test]
    fn count_star_and_count_column() {
        let mut db = setup();
        let r = execute(&mut db, "SELECT count(*) FROM movie").unwrap();
        let rs = r.rows().unwrap();
        assert_eq!(rs.columns, vec!["count(*)"]);
        assert_eq!(rs.rows, vec![vec![Value::Int(3)]]);
        // COUNT(col) skips NULLs.
        execute(
            &mut db,
            "INSERT INTO movie (movie_id, title) VALUES (9, 'NoRating')",
        )
        .unwrap();
        let r = execute(&mut db, "SELECT count(rating) FROM movie").unwrap();
        assert_eq!(r.rows().unwrap().rows[0][0], Value::Int(3));
        let r = execute(&mut db, "SELECT count(*) FROM movie").unwrap();
        assert_eq!(r.rows().unwrap().rows[0][0], Value::Int(4));
    }

    #[test]
    fn sum_avg_min_max() {
        let mut db = setup();
        let r = execute(
            &mut db,
            "SELECT min(rating), max(rating), avg(rating) FROM movie",
        )
        .unwrap();
        let rs = r.rows().unwrap();
        assert_eq!(rs.rows[0][0], Value::Float(8.3));
        assert_eq!(rs.rows[0][1], Value::Float(8.8));
        let avg = rs.rows[0][2].as_float().unwrap();
        assert!((avg - (8.8 + 8.3 + 8.5) / 3.0).abs() < 1e-9);
        // SUM over ints stays integral.
        let r = execute(&mut db, "SELECT sum(movie_id) FROM movie").unwrap();
        assert_eq!(r.rows().unwrap().rows[0][0], Value::Int(6));
    }

    #[test]
    fn group_by_with_aggregates() {
        let mut db = setup();
        let r = execute(
            &mut db,
            "SELECT movie_id, count(*), sum(price) FROM screening              GROUP BY movie_id ORDER BY movie_id",
        )
        .unwrap();
        let rs = r.rows().unwrap();
        assert_eq!(rs.columns, vec!["movie_id", "count(*)", "sum(price)"]);
        assert_eq!(rs.rows.len(), 2);
        assert_eq!(
            rs.rows[0],
            vec![Value::Int(1), Value::Int(1), Value::Float(12.5)]
        );
        assert_eq!(
            rs.rows[1],
            vec![Value::Int(2), Value::Int(2), Value::Float(20.0)]
        );
    }

    #[test]
    fn group_by_over_join() {
        let mut db = setup();
        let r = execute(
            &mut db,
            "SELECT movie.title, count(*) FROM screening              JOIN movie ON screening.movie_id = movie.movie_id              GROUP BY movie.title ORDER BY title DESC",
        )
        .unwrap();
        let rs = r.rows().unwrap();
        assert_eq!(rs.rows.len(), 2);
        assert_eq!(rs.rows[0][0], Value::Text("Heat".into()));
        assert_eq!(rs.rows[0][1], Value::Int(2));
    }

    #[test]
    fn aggregate_validation_errors() {
        let mut db = setup();
        // Non-grouped plain column.
        assert!(execute(&mut db, "SELECT title, count(*) FROM movie").is_err());
        // star + group by
        assert!(execute(&mut db, "SELECT * FROM movie GROUP BY genre").is_err());
        // SUM over text.
        assert!(execute(&mut db, "SELECT sum(title) FROM movie").is_err());
        // Unknown function.
        assert!(execute(&mut db, "SELECT median(rating) FROM movie").is_err());
        // `*` only for COUNT.
        assert!(execute(&mut db, "SELECT sum(*) FROM movie").is_err());
    }

    #[test]
    fn aggregates_over_empty_input() {
        let mut db = setup();
        let r = execute(
            &mut db,
            "SELECT count(*), min(rating) FROM movie WHERE movie_id > 99",
        )
        .unwrap();
        let rs = r.rows().unwrap();
        assert_eq!(rs.rows.len(), 1);
        assert_eq!(rs.rows[0][0], Value::Int(0));
        assert_eq!(rs.rows[0][1], Value::Null);
        // Grouped over empty input: no groups, no rows.
        let r = execute(
            &mut db,
            "SELECT genre, count(*) FROM movie WHERE movie_id > 99 GROUP BY genre",
        )
        .unwrap();
        assert!(r.rows().unwrap().rows.is_empty());
    }

    #[test]
    fn group_by_limit() {
        let mut db = setup();
        let r = execute(
            &mut db,
            "SELECT genre, count(*) FROM movie GROUP BY genre ORDER BY genre LIMIT 2",
        )
        .unwrap();
        assert_eq!(r.rows().unwrap().rows.len(), 2);
    }

    #[test]
    fn script_splitting_respects_strings() {
        let mut db = Database::new();
        let results = execute_script(
            &mut db,
            "CREATE TABLE t (id INT PRIMARY KEY, s TEXT);
             INSERT INTO t VALUES (1, 'semi;colon');",
        )
        .unwrap();
        assert_eq!(results.len(), 2);
        let r = execute(&mut db, "SELECT s FROM t").unwrap();
        assert_eq!(
            r.rows().unwrap().rows[0][0],
            Value::Text("semi;colon".into())
        );
    }

    #[test]
    fn split_statements_borrows_single_statement() {
        let script = "SELECT * FROM t";
        let parts = split_statements(script);
        assert_eq!(parts, vec![script]);
        // The returned slice points into the input, not a copy.
        assert_eq!(parts[0].as_ptr(), script.as_ptr());
    }

    #[test]
    fn split_statements_edge_cases() {
        assert_eq!(split_statements("a; b ;c"), vec!["a", " b ", "c"]);
        assert_eq!(split_statements("a;"), vec!["a"]);
        assert_eq!(split_statements("  "), Vec::<&str>::new());
        assert_eq!(
            split_statements("say 'don''t; stop'; x"),
            vec!["say 'don''t; stop'", " x"]
        );
        assert_eq!(split_statements("'a';'b'"), vec!["'a'", "'b'"]);
    }

    #[test]
    fn column_index_does_not_match_partial_suffix() {
        let rs = ResultSet {
            columns: vec!["movie.title".into(), "screening.date".into()],
            rows: Vec::new(),
        };
        assert_eq!(rs.column_index("title"), Some(0));
        assert_eq!(rs.column_index("date"), Some(1));
        assert_eq!(rs.column_index("movie.title"), Some(0));
        // `itle` is a suffix of the string but not of the column name.
        assert_eq!(rs.column_index("itle"), None);
        assert_eq!(rs.column_index("nope"), None);
    }

    /// Every query on the shared fixture must agree between the planned
    /// and the reference executor.
    #[test]
    fn planned_matches_reference_on_fixture() {
        let mut db = setup();
        db.table_mut("movie")
            .unwrap()
            .create_range_index("rating")
            .unwrap();
        let queries = [
            "SELECT * FROM movie",
            "SELECT title FROM movie WHERE movie_id = 2",
            "SELECT title FROM movie WHERE rating > 8.4 ORDER BY title",
            "SELECT * FROM movie WHERE rating >= 8.3 AND rating < 8.8 ORDER BY rating DESC LIMIT 1",
            "SELECT * FROM movie WHERE genre = 'Crime' OR genre = 'Horror' ORDER BY movie_id",
            "SELECT movie.title, screening.price FROM screening \
             JOIN movie ON screening.movie_id = movie.movie_id \
             WHERE screening.price > 10.0 ORDER BY screening.price",
            "SELECT movie.title FROM screening \
             JOIN movie ON screening.movie_id = movie.movie_id \
             WHERE movie.movie_id = 2 ORDER BY movie.title LIMIT 5",
            "SELECT genre, count(*), avg(rating) FROM movie GROUP BY genre ORDER BY genre",
            "SELECT count(*) FROM screening WHERE price = 10.0",
            "SELECT title FROM movie WHERE rating IS NOT NULL ORDER BY rating LIMIT 2",
            // A text literal that coerces to NULL mid-evaluation: both
            // paths must apply the null check to the *uncoerced* literal.
            "SELECT title FROM movie WHERE rating > 'null'",
            "SELECT title FROM movie WHERE genre = 'null'",
        ];
        for q in queries {
            let Statement::Select(sel) = parse_statement(q).unwrap() else {
                unreachable!()
            };
            let planned = execute_select(&db, &sel).unwrap();
            let reference = execute_select_reference(&db, &sel).unwrap();
            assert_eq!(planned, reference, "query: {q}");
        }
    }

    #[test]
    fn ambiguous_column_errors_even_when_pushdown_would_empty_the_stream() {
        let db = setup();
        // `movie_id` is ambiguous over the joined layout; `rating > 100`
        // matches nothing. The seed evaluated WHERE per joined row and
        // errored on the first one — pushing the rating filter first
        // would empty the stream and silently skip the error.
        let q = "SELECT movie.title FROM movie \
                 JOIN screening ON screening.movie_id = movie.movie_id \
                 WHERE movie_id = 1 AND movie.rating > 100.0";
        let Statement::Select(sel) = parse_statement(q).unwrap() else {
            unreachable!()
        };
        let planned = execute_select(&db, &sel);
        let reference = execute_select_reference(&db, &sel);
        assert!(
            reference.is_err(),
            "reference must reject the ambiguous column"
        );
        assert!(planned.is_err(), "planned path must preserve the error");
    }

    #[test]
    fn nan_values_agree_between_paths_and_group_separately() {
        let mut db = Database::new();
        execute(&mut db, "CREATE TABLE t (id INT PRIMARY KEY, x FLOAT)").unwrap();
        execute(
            &mut db,
            "INSERT INTO t VALUES (1, 5.0), (2, 'NaN'), (3, 7.0), (4, 'NaN')",
        )
        .unwrap();
        db.table_mut("t").unwrap().create_range_index("x").unwrap();
        for q in [
            // NaN bound must filter everything out, not be dropped.
            "SELECT id FROM t WHERE x > 5.0 AND x > 'NaN'",
            "SELECT id FROM t WHERE x > 'NaN'",
            // NaN rows form their own group, not merge into 5.0's.
            "SELECT x, count(*) FROM t GROUP BY x",
            // NaN sorts deterministically after the numbers.
            "SELECT id FROM t ORDER BY x LIMIT 3",
            "SELECT id FROM t ORDER BY x DESC",
        ] {
            let Statement::Select(sel) = parse_statement(q).unwrap() else {
                unreachable!()
            };
            let planned = execute_select(&db, &sel).unwrap();
            let reference = execute_select_reference(&db, &sel).unwrap();
            assert_eq!(planned, reference, "query: {q}");
        }
        let r = execute(&mut db, "SELECT id FROM t WHERE x > 5.0 AND x > 'NaN'").unwrap();
        assert!(
            r.rows().unwrap().rows.is_empty(),
            "NaN comparison is never true"
        );
        let r = execute(&mut db, "SELECT x, count(*) FROM t GROUP BY x").unwrap();
        assert_eq!(r.rows().unwrap().rows.len(), 3, "5.0, 7.0 and NaN groups");
    }

    #[test]
    fn nan_rows_and_range_probe_bounds_agree() {
        // The engine's comparison semantics collapse `NaN <op> float` to
        // Equal: NaN cells pass `<=`/`>=` but fail `<`/`>`/`=`. The
        // ordered index sorts NaN above every number, so a consumed
        // range probe must add or strip the NaN bucket to match — for
        // every bound shape.
        let mut db = Database::new();
        execute(&mut db, "CREATE TABLE t (id INT PRIMARY KEY, x FLOAT)").unwrap();
        for i in 0..100i64 {
            execute(
                &mut db,
                &format!("INSERT INTO t VALUES ({i}, {})", i as f64 / 10.0),
            )
            .unwrap();
        }
        for i in 100..103i64 {
            execute(&mut db, &format!("INSERT INTO t VALUES ({i}, 'NaN')")).unwrap();
        }
        db.table_mut("t").unwrap().create_range_index("x").unwrap();
        for q in [
            "SELECT id FROM t WHERE x <= 1.0",
            "SELECT id FROM t WHERE x < 1.0",
            "SELECT id FROM t WHERE x >= 9.0",
            "SELECT id FROM t WHERE x > 9.0",
            "SELECT id FROM t WHERE x >= 1.0 AND x <= 2.0",
            "SELECT id FROM t WHERE x > 1.0 AND x <= 2.0",
        ] {
            let Statement::Select(sel) = parse_statement(q).unwrap() else {
                unreachable!()
            };
            let planned = execute_select(&db, &sel).unwrap();
            let reference = execute_select_reference(&db, &sel).unwrap();
            assert_eq!(planned, reference, "query: {q}");
        }
        // Spot-check the semantics themselves: non-strict bounds accept
        // NaN, strict bounds reject it.
        let r = execute(&mut db, "SELECT count(*) FROM t WHERE x <= 1.0").unwrap();
        assert_eq!(r.rows().unwrap().rows[0][0], Value::Int(11 + 3));
        let r = execute(&mut db, "SELECT count(*) FROM t WHERE x < 1.0").unwrap();
        assert_eq!(r.rows().unwrap().rows[0][0], Value::Int(10));
        let r = execute(&mut db, "SELECT count(*) FROM t WHERE x > 9.0").unwrap();
        assert_eq!(r.rows().unwrap().rows[0][0], Value::Int(9));
    }

    #[test]
    fn top_k_matches_stable_sort_semantics() {
        let mut db = Database::new();
        execute(&mut db, "CREATE TABLE t (id INT PRIMARY KEY, k INT)").unwrap();
        // Many ties: stable order must break them by insertion sequence.
        for i in 0..50i64 {
            execute(&mut db, &format!("INSERT INTO t VALUES ({i}, {})", i % 5)).unwrap();
        }
        for q in [
            "SELECT id FROM t ORDER BY k LIMIT 7",
            "SELECT id FROM t ORDER BY k DESC LIMIT 7",
            "SELECT id FROM t ORDER BY k LIMIT 0",
            "SELECT id FROM t ORDER BY k LIMIT 100",
        ] {
            let Statement::Select(sel) = parse_statement(q).unwrap() else {
                unreachable!()
            };
            let planned = execute_select(&db, &sel).unwrap();
            let reference = execute_select_reference(&db, &sel).unwrap();
            assert_eq!(planned, reference, "query: {q}");
        }
    }

    /// Assert planned (default options), the PR 3 no-pushdown shape, the
    /// PR 2 per-key shape, the tight-budget shape (degradation paths
    /// live) and the reference executor all agree on `q` — including row
    /// order.
    fn assert_all_paths_agree(db: &Database, q: &str) -> ResultSet {
        let Statement::Select(sel) = parse_statement(q).unwrap() else {
            unreachable!()
        };
        let planned = execute_select(db, &sel).unwrap();
        let no_pd = execute_select_with(
            db,
            &sel,
            &crate::sql::plan::PlanOptions::no_build_pushdown(),
        )
        .unwrap();
        let per_key =
            execute_select_with(db, &sel, &crate::sql::plan::PlanOptions::per_key_joins()).unwrap();
        let tight =
            execute_select_with(db, &sel, &crate::sql::plan::PlanOptions::tight_budget()).unwrap();
        let reference = execute_select_reference(db, &sel).unwrap();
        assert_eq!(planned, reference, "planned vs reference: {q}");
        assert_eq!(no_pd, reference, "no-pushdown shape vs reference: {q}");
        assert_eq!(per_key, reference, "per-key fallback vs reference: {q}");
        assert_eq!(tight, reference, "tight-budget shape vs reference: {q}");
        planned
    }

    /// The planner's build-pushdown count for `q` — pins that a test
    /// actually exercised the pre-filtered path.
    fn pushdowns(db: &Database, q: &str) -> usize {
        let Statement::Select(sel) = parse_statement(q).unwrap() else {
            unreachable!()
        };
        plan_select(db, &sel).unwrap().build_pushdown_count()
    }

    /// The planner's strategy for each join of `q`, for pinning which
    /// code path a test actually exercised.
    fn strategies(db: &Database, q: &str) -> Vec<crate::sql::plan::JoinStrategy> {
        let Statement::Select(sel) = parse_statement(q).unwrap() else {
            unreachable!()
        };
        plan_select(db, &sel)
            .unwrap()
            .join_order
            .iter()
            .map(|j| j.strategy)
            .collect()
    }

    /// Two tables with an unindexed float join key: NULLs, NaNs and
    /// Int/Float-mixed values on both sides. `ordered` adds range
    /// indexes on both key columns (the MergeRange gate); `hash` adds a
    /// hash index on the right key (the IndexProbe gate).
    fn key_edge_db(ordered: bool, hash: bool) -> Database {
        let mut db = Database::new();
        execute_script(
            &mut db,
            "CREATE TABLE lt (l_id INT PRIMARY KEY, k FLOAT);
             CREATE TABLE rt (r_id INT PRIMARY KEY, k FLOAT, tag TEXT);
             INSERT INTO lt VALUES (1, 1.0), (2, 2.0), (3, 'NaN'), (4, NULL), (5, 2.0), (6, 9.0);
             INSERT INTO rt VALUES (10, 1.0, 'a'), (11, 2.0, 'b'), (12, 2.0, 'c'),
                                   (13, 'NaN', 'd'), (14, NULL, 'e'), (15, 7.0, 'f');",
        )
        .unwrap();
        if ordered {
            db.table_mut("lt").unwrap().create_range_index("k").unwrap();
            db.table_mut("rt").unwrap().create_range_index("k").unwrap();
        }
        if hash {
            db.table_mut("rt").unwrap().create_index("k").unwrap();
        }
        db
    }

    #[test]
    fn join_key_edge_cases_through_all_strategies() {
        use crate::sql::plan::JoinStrategy;
        let q = "SELECT lt.l_id, rt.tag FROM lt JOIN rt ON rt.k = lt.k";
        // Expected: NULL keys (l_id 4 / r_id 14) drop, NaN keys (l_id 3 /
        // r_id 13) never match, 2.0 fans out 2×2, in canonical
        // (FROM-order RowId lexicographic) order.
        let expected = vec![
            vec![Value::Int(1), Value::Text("a".into())],
            vec![Value::Int(2), Value::Text("b".into())],
            vec![Value::Int(2), Value::Text("c".into())],
            vec![Value::Int(5), Value::Text("b".into())],
            vec![Value::Int(5), Value::Text("c".into())],
        ];
        for (ordered, hash, want) in [
            (false, false, JoinStrategy::BuildHash),
            (true, false, JoinStrategy::BuildHash),
            (false, true, JoinStrategy::IndexProbe),
        ] {
            let db = key_edge_db(ordered, hash);
            assert_eq!(strategies(&db, q), vec![want], "ordered={ordered}");
            let rs = assert_all_paths_agree(&db, q);
            assert_eq!(rs.rows, expected, "ordered={ordered} hash={hash}");
        }
        // MergeRange needs a small outer estimate: filter the left side
        // down to one row through its PK.
        let db = key_edge_db(true, false);
        let q_sel = "SELECT lt.l_id, rt.tag FROM lt JOIN rt ON rt.k = lt.k WHERE lt.l_id = 2";
        assert_eq!(strategies(&db, q_sel), vec![JoinStrategy::MergeRange]);
        let rs = assert_all_paths_agree(&db, q_sel);
        assert_eq!(
            rs.rows,
            vec![
                vec![Value::Int(2), Value::Text("b".into())],
                vec![Value::Int(2), Value::Text("c".into())],
            ]
        );
    }

    #[test]
    fn cross_type_int_float_keys_join_under_every_strategy() {
        for (ordered, hash) in [(false, false), (true, false), (false, true)] {
            let mut db = Database::new();
            execute_script(
                &mut db,
                "CREATE TABLE li (l_id INT PRIMARY KEY, k INT);
                 CREATE TABLE rf (r_id INT PRIMARY KEY, k FLOAT);
                 INSERT INTO li VALUES (1, 1), (2, 2), (3, 3);
                 INSERT INTO rf VALUES (10, 1.0), (11, 2.5), (12, 3.0);",
            )
            .unwrap();
            if ordered {
                db.table_mut("li").unwrap().create_range_index("k").unwrap();
                db.table_mut("rf").unwrap().create_range_index("k").unwrap();
            }
            if hash {
                db.table_mut("rf").unwrap().create_index("k").unwrap();
            }
            let rs = assert_all_paths_agree(
                &db,
                "SELECT li.l_id, rf.r_id FROM li JOIN rf ON rf.k = li.k",
            );
            assert_eq!(
                rs.rows,
                vec![
                    vec![Value::Int(1), Value::Int(10)],
                    vec![Value::Int(3), Value::Int(12)],
                ],
                "Int(1) must join Float(1.0), ordered={ordered} hash={hash}"
            );
            // And with a small outer stream the ordered variant merges.
            if ordered {
                let q = "SELECT li.l_id, rf.r_id FROM li JOIN rf ON rf.k = li.k WHERE li.l_id = 3";
                let rs = assert_all_paths_agree(&db, q);
                assert_eq!(rs.rows, vec![vec![Value::Int(3), Value::Int(12)]]);
            }
        }
    }

    #[test]
    fn empty_build_side_and_single_bucket_preserve_canonical_order() {
        // Empty right table: zero output under every strategy.
        let mut db = Database::new();
        execute_script(
            &mut db,
            "CREATE TABLE lt (l_id INT PRIMARY KEY, k INT);
             CREATE TABLE rt (r_id INT PRIMARY KEY, k INT);
             INSERT INTO lt VALUES (1, 7), (2, 7);",
        )
        .unwrap();
        let rs = assert_all_paths_agree(&db, "SELECT lt.l_id FROM lt JOIN rt ON rt.k = lt.k");
        assert!(rs.rows.is_empty());

        // Single bucket (every row the same key): full cross product in
        // FROM-order RowId lexicographic order.
        execute(&mut db, "INSERT INTO rt VALUES (10, 7), (11, 7), (12, 7)").unwrap();
        let rs = assert_all_paths_agree(
            &db,
            "SELECT lt.l_id, rt.r_id FROM lt JOIN rt ON rt.k = lt.k",
        );
        let expected: Vec<Vec<Value>> = [(1, 10), (1, 11), (1, 12), (2, 10), (2, 11), (2, 12)]
            .iter()
            .map(|&(l, r)| vec![Value::Int(l), Value::Int(r)])
            .collect();
        assert_eq!(rs.rows, expected);
    }

    /// Build-side pushdown edge cases: an unindexed float join key with
    /// NULL and NaN on both sides, plus a range-indexed float filter
    /// column `score` that itself carries NULL and NaN cells. `ordered`
    /// adds range indexes on both join-key columns (the MergeRange gate).
    fn pushdown_edge_db(ordered: bool) -> Database {
        let mut db = Database::new();
        execute_script(
            &mut db,
            "CREATE TABLE lt (l_id INT PRIMARY KEY, k FLOAT);
             CREATE TABLE rt (r_id INT PRIMARY KEY, k FLOAT, score FLOAT)",
        )
        .unwrap();
        for i in 0..40i64 {
            let k = match i % 9 {
                0 => "NULL".to_string(),
                3 => "'NaN'".to_string(),
                _ => format!("{}.0", i % 20),
            };
            execute(&mut db, &format!("INSERT INTO lt VALUES ({i}, {k})")).unwrap();
        }
        for i in 0..60i64 {
            let k = match i % 11 {
                0 => "NULL".to_string(),
                4 => "'NaN'".to_string(),
                _ => format!("{}.0", i % 20),
            };
            let score = match i % 15 {
                0 => "NULL".to_string(),
                7 => "'NaN'".to_string(),
                _ => format!("{}", i as f64 / 2.0),
            };
            execute(
                &mut db,
                &format!("INSERT INTO rt VALUES ({i}, {k}, {score})"),
            )
            .unwrap();
        }
        db.table_mut("rt")
            .unwrap()
            .create_range_index("score")
            .unwrap();
        if ordered {
            db.table_mut("lt").unwrap().create_range_index("k").unwrap();
            db.table_mut("rt").unwrap().create_range_index("k").unwrap();
        }
        db
    }

    #[test]
    fn pushdown_handles_null_and_nan_cells_on_build_side() {
        let db = pushdown_edge_db(false);
        // Non-strict bound: NaN score cells pass (`partial_cmp` collapse),
        // so the fetched set must include the index's NaN bucket; strict
        // bound: NaN cells fail and must be stripped. NULL score cells
        // never pass either way (the index excludes them). NULL/NaN join
        // *keys* on the filtered rows must still never join.
        for q in [
            "SELECT lt.l_id, rt.r_id FROM lt JOIN rt ON rt.k = lt.k WHERE rt.score <= 1.0",
            "SELECT lt.l_id, rt.r_id FROM lt JOIN rt ON rt.k = lt.k WHERE rt.score < 1.0",
            "SELECT lt.l_id, rt.r_id FROM lt JOIN rt ON rt.k = lt.k WHERE rt.score >= 27.0",
        ] {
            assert!(pushdowns(&db, q) >= 1, "pushdown must trigger: {q}");
            assert_all_paths_agree(&db, q);
        }
    }

    #[test]
    fn pushdown_probe_that_empties_the_build_side() {
        let db = pushdown_edge_db(false);
        let q = "SELECT lt.l_id, rt.r_id FROM lt JOIN rt ON rt.k = lt.k WHERE rt.score < -5.0";
        assert!(pushdowns(&db, q) >= 1, "pushdown must trigger: {q}");
        let rs = assert_all_paths_agree(&db, q);
        assert!(rs.rows.is_empty(), "no build row survives the probe");
    }

    #[test]
    fn clamped_merge_walk_agrees_with_reference() {
        use crate::sql::plan::JoinStrategy;
        let db = pushdown_edge_db(true);
        // A selective bound on the join key itself with a tiny outer
        // stream: the planner clamps the MergeRange walk to the probe's
        // bounds. The non-strict `<=` additionally pulls NaN join-key
        // cells into the fetched set — they must still never join.
        let q = "SELECT lt.l_id, rt.r_id FROM lt JOIN rt ON rt.k = lt.k \
                 WHERE lt.l_id = 2 AND rt.k <= 1.0";
        assert_eq!(strategies(&db, q), vec![JoinStrategy::MergeRange]);
        assert!(pushdowns(&db, q) >= 1, "pushdown must trigger: {q}");
        assert_all_paths_agree(&db, q);
    }

    #[test]
    fn consumed_pushdown_conjunct_is_not_double_filtered() {
        let db = pushdown_edge_db(false);
        let q = "SELECT lt.l_id, rt.r_id FROM lt JOIN rt ON rt.k = lt.k WHERE rt.score <= 1.0";
        let Statement::Select(sel) = parse_statement(q).unwrap() else {
            unreachable!()
        };
        let p = plan_select(&db, &sel).unwrap();
        assert_eq!(p.build_pushdown_count(), 1);
        assert_eq!(
            p.staged_count(),
            0,
            "consumed conjunct must leave the residual stages: {}",
            p.describe()
        );
        // And dropping it is sound: results still match the reference,
        // which evaluates the full WHERE clause after the join.
        assert_all_paths_agree(&db, q);
    }

    #[test]
    fn reordered_joins_keep_canonical_order_under_pushdown() {
        // Star join where the tiny `a` join reorders first and the
        // unindexed `s` join carries a build-side pushdown: the filtered
        // BuildHash output must still canonicalize to FROM-order
        // nested-loop order.
        let mut db = Database::new();
        execute_script(
            &mut db,
            "CREATE TABLE m (m_id INT PRIMARY KEY, k INT);
             CREATE TABLE s (s_id INT PRIMARY KEY, k INT, tag INT);
             CREATE TABLE a (a_id INT PRIMARY KEY, m_id INT REFERENCES m(m_id));",
        )
        .unwrap();
        for i in 0..30i64 {
            execute(&mut db, &format!("INSERT INTO m VALUES ({i}, {})", i % 5)).unwrap();
            execute(
                &mut db,
                &format!("INSERT INTO s VALUES ({i}, {}, {})", i % 5, i % 10),
            )
            .unwrap();
        }
        execute(&mut db, "INSERT INTO a VALUES (0, 3), (1, 17)").unwrap();
        db.table_mut("s").unwrap().create_index("tag").unwrap();
        let q = "SELECT m.m_id, s.s_id, a.a_id FROM m \
                 JOIN s ON s.k = m.k \
                 JOIN a ON a.m_id = m.m_id \
                 WHERE s.tag = 1";
        let Statement::Select(sel) = parse_statement(q).unwrap() else {
            unreachable!()
        };
        let p = plan_select(&db, &sel).unwrap();
        assert!(p.joins_reordered(), "fixture must trigger a reorder");
        assert_eq!(
            p.build_pushdown_count(),
            1,
            "fixture must exercise the pushdown, got {}",
            p.describe()
        );
        assert_all_paths_agree(&db, q);
    }

    #[test]
    fn reordered_joins_keep_canonical_order_under_build_hash() {
        use crate::sql::plan::JoinStrategy;
        // Star join where the second join is tiny (reordered first) and
        // the first uses an unindexed key: the BuildHash output must
        // still canonicalize back to FROM-order nested-loop order.
        let mut db = Database::new();
        execute_script(
            &mut db,
            "CREATE TABLE m (m_id INT PRIMARY KEY, k INT);
             CREATE TABLE s (s_id INT PRIMARY KEY, k INT);
             CREATE TABLE a (a_id INT PRIMARY KEY, m_id INT REFERENCES m(m_id));",
        )
        .unwrap();
        for i in 0..30i64 {
            execute(&mut db, &format!("INSERT INTO m VALUES ({i}, {})", i % 5)).unwrap();
            execute(&mut db, &format!("INSERT INTO s VALUES ({i}, {})", i % 5)).unwrap();
        }
        execute(&mut db, "INSERT INTO a VALUES (0, 3), (1, 17)").unwrap();
        let q = "SELECT m.m_id, s.s_id, a.a_id FROM m \
                 JOIN s ON s.k = m.k \
                 JOIN a ON a.m_id = m.m_id";
        let Statement::Select(sel) = parse_statement(q).unwrap() else {
            unreachable!()
        };
        let p = plan_select(&db, &sel).unwrap();
        assert!(p.joins_reordered(), "fixture must trigger a reorder");
        assert!(
            p.join_order
                .iter()
                .any(|j| j.strategy == JoinStrategy::BuildHash),
            "fixture must exercise BuildHash, got {}",
            p.describe()
        );
        assert_all_paths_agree(&db, q);
    }

    #[test]
    fn indexed_access_returns_scan_order() {
        let mut db = setup();
        // Grow the table so a point lookup is clearly below the planner's
        // selectivity threshold (on a 3-row table a scan is as cheap).
        for i in 100..120 {
            execute(
                &mut db,
                &format!("INSERT INTO movie VALUES ({i}, 'M{i}', 'Drama', 5.0)"),
            )
            .unwrap();
        }
        // movie_id is the PK (hash-indexed): the planner takes the index
        // path, and results must still come back in row order.
        let r = execute(&mut db, "SELECT title FROM movie WHERE movie_id = 2").unwrap();
        assert_eq!(
            r.rows().unwrap().rows,
            vec![vec![Value::Text("Heat".into())]]
        );
        let p = plan_select(
            &db,
            &match parse_statement("SELECT title FROM movie WHERE movie_id = 2").unwrap() {
                Statement::Select(s) => s,
                _ => unreachable!(),
            },
        )
        .unwrap();
        assert_eq!(p.access.describe(), "index_eq(movie_id)");
    }

    #[test]
    fn index_probe_pushdown_prefilters_probed_buckets() {
        use crate::sql::plan::JoinStrategy;
        // Indexed join key AND a selective indexed build-side conjunct:
        // the planner consumes the conjunct into a pre-filter, so the
        // executor MUST intersect every probed bucket with the fetched
        // set — the reference evaluates the full WHERE after the join
        // and any un-filtered probe row would show up as a mismatch.
        let mut db = Database::new();
        execute_script(
            &mut db,
            "CREATE TABLE l (l_id INT PRIMARY KEY, k INT);
             CREATE TABLE r (r_id INT PRIMARY KEY, k INT, tag INT)",
        )
        .unwrap();
        for i in 0..200i64 {
            db.insert("l", crate::row![i, i % 50]).unwrap();
            db.insert("r", crate::row![i, i % 50, i % 100]).unwrap();
        }
        db.table_mut("r").unwrap().create_index("k").unwrap();
        db.table_mut("r").unwrap().create_index("tag").unwrap();
        let q = "SELECT l.l_id, r.r_id FROM l JOIN r ON r.k = l.k WHERE r.tag = 7";
        let Statement::Select(sel) = parse_statement(q).unwrap() else {
            unreachable!()
        };
        let p = plan_select(&db, &sel).unwrap();
        assert_eq!(p.join_order[0].strategy, JoinStrategy::IndexProbe);
        assert_eq!(p.build_pushdown_count(), 1, "{}", p.describe());
        assert_eq!(
            p.staged_count(),
            0,
            "conjunct must be consumed by the pre-filter: {}",
            p.describe()
        );
        let rs = assert_all_paths_agree(&db, q);
        // tag = 7 keeps r_id ∈ {7, 107}, both with k = 7: the 4 outer
        // rows sharing that key each match exactly those two.
        assert_eq!(rs.rows.len(), 8);
    }

    /// 10k-row build side where one key holds ~half the rows (the
    /// MCV-visible heavy hitter) and the rest are near-distinct, joined
    /// from a small outer table that hits the hot key, tail keys and
    /// misses. No index on the key, so the planner must BuildHash — and
    /// partition under a budget far below the build-map footprint.
    fn skewed_db() -> Database {
        let mut db = Database::new();
        execute_script(
            &mut db,
            "CREATE TABLE probe (p_id INT PRIMARY KEY, k INT);
             CREATE TABLE build (b_id INT PRIMARY KEY, k INT)",
        )
        .unwrap();
        for i in 0..10_000i64 {
            let k = if i % 2 == 0 { 42 } else { i };
            db.insert("build", crate::row![i, k]).unwrap();
        }
        for i in 0..40i64 {
            // Two hot probes, tail hits (odd ids), and misses (even
            // ids other than 42 never appear on the build side).
            let k = match i % 4 {
                0 => 42,
                1 => 2 * i + 1,
                2 => 2 * i,
                _ => 9_999,
            };
            db.insert("probe", crate::row![i, k]).unwrap();
        }
        db
    }

    const SKEW_BUDGET: usize = 256 * 1024;

    #[test]
    fn skewed_join_partitions_under_budget_with_identical_results() {
        use crate::sql::plan::JoinStrategy;
        let db = skewed_db();
        let q = "SELECT probe.p_id, build.b_id FROM probe JOIN build ON build.k = probe.k";
        let Statement::Select(sel) = parse_statement(q).unwrap() else {
            unreachable!()
        };
        let opts = PlanOptions {
            memory_budget: Some(SKEW_BUDGET),
            ..PlanOptions::default()
        };
        let p = plan_select_with(&db, &sel, &opts).unwrap();
        assert_eq!(p.join_order[0].strategy, JoinStrategy::BuildHash);
        assert!(
            p.join_order[0].partitions > 1,
            "build must partition under the budget: {}",
            p.describe()
        );
        assert!(
            p.join_order[0].hot_keys.contains(&Value::Int(42)),
            "MCV stats must surface the hot key: {:?}",
            p.join_order[0].hot_keys
        );
        // Identical results, and the tracked peak stays under budget even
        // though the in-place build map alone would cost ~560 KiB.
        let budget = ExecBudget::with_limit(SKEW_BUDGET);
        let partitioned = execute_select_budgeted(&db, &sel, &opts, &budget, None).unwrap();
        let reference = execute_select_reference(&db, &sel).unwrap();
        assert_eq!(partitioned, reference);
        assert!(
            partitioned.rows.len() > 5_000,
            "hot key must fan out through the resident path"
        );
        assert!(budget.peak() > 0, "the join must charge the budget");
        assert!(
            budget.peak() <= SKEW_BUDGET,
            "peak {} exceeds budget {}",
            budget.peak(),
            SKEW_BUDGET
        );
        assert_eq!(budget.used(), 0, "all transient charges released");
    }

    #[test]
    fn runtime_degradation_kicks_in_without_a_planned_partitioning() {
        // Plan without a budget (partitions stays 1), then execute under
        // a budget the in-place build cannot fit: the executor must
        // degrade to the partitioned path on its own and still agree.
        let db = skewed_db();
        let q = "SELECT probe.p_id, build.b_id FROM probe JOIN build ON build.k = probe.k";
        let Statement::Select(sel) = parse_statement(q).unwrap() else {
            unreachable!()
        };
        // Explicitly budget-less (the `tight-budget` feature flips the
        // default), so the plan keeps the in-place build.
        let unbudgeted = PlanOptions {
            memory_budget: None,
            ..PlanOptions::default()
        };
        assert_eq!(
            plan_select_with(&db, &sel, &unbudgeted).unwrap().join_order[0].partitions,
            1
        );
        let budget = ExecBudget::with_limit(SKEW_BUDGET);
        let degraded = execute_select_budgeted(&db, &sel, &unbudgeted, &budget, None).unwrap();
        assert_eq!(degraded, execute_select_reference(&db, &sel).unwrap());
        assert!(
            budget.peak() <= SKEW_BUDGET,
            "peak {} exceeds budget {}",
            budget.peak(),
            SKEW_BUDGET
        );
    }
}
