//! `Canonicalize`: restore FROM-order after reordered joins.
//!
//! Permutes each tuple's positions back to table ordinals and sorts
//! rows by their FROM-order RowId tuples — exactly the nested-loop
//! order the reference executor produces. Lowered only when the plan
//! reordered joins; otherwise the stream never left canonical order.

use std::cmp::Ordering;
use std::rc::Rc;

use crate::error::Result;
use crate::row::Row;

use super::{Batch, ExecCtx, NodeStats, Operator};

pub(super) struct Canonicalize<'a> {
    cx: Rc<ExecCtx<'a>>,
    child: Box<dyn Operator<'a> + 'a>,
    out: Option<Batch<'a>>,
    stats: Option<NodeStats>,
}

impl<'a> Canonicalize<'a> {
    pub(super) fn new(cx: Rc<ExecCtx<'a>>, child: Box<dyn Operator<'a> + 'a>) -> Canonicalize<'a> {
        Canonicalize {
            cx,
            child,
            out: None,
            stats: None,
        }
    }

    fn apply(&mut self, input: Batch<'a>) -> Result<Batch<'a>> {
        let Batch::Tuples {
            tuples,
            rids,
            stride,
        } = input
        else {
            unreachable!("Canonicalize runs on the borrowed tuple stream")
        };
        let cx = &self.cx;
        let ntab = cx.layout.tables;
        debug_assert_eq!(stride, ntab, "canonicalization runs after the final join");
        let exec_pos = &cx.exec_pos;
        let count = tuples.len() / stride;
        let mut order: Vec<usize> = (0..count).collect();
        order.sort_unstable_by(|&a, &b| {
            for ord in 0..ntab {
                let ra = rids[a * stride + exec_pos[ord]];
                let rb = rids[b * stride + exec_pos[ord]];
                match ra.cmp(&rb) {
                    Ordering::Equal => continue,
                    other => return other,
                }
            }
            Ordering::Equal
        });
        let mut canon: Vec<&Row> = Vec::with_capacity(tuples.len());
        for &i in &order {
            for ord in 0..ntab {
                canon.push(tuples[i * stride + exec_pos[ord]]);
            }
        }
        // RowIds have done their job; downstream operators work in FROM
        // order without them.
        Ok(Batch::Tuples {
            tuples: canon,
            rids: Vec::new(),
            stride,
        })
    }

    fn describe_node(&self) -> String {
        "Canonicalize [restore FROM-order]".to_string()
    }

    fn estimate(&self) -> Option<f64> {
        // A pure reordering: the child's cardinality estimate carries.
        self.child.estimated_rows()
    }
}

operator_impl!(Canonicalize);
