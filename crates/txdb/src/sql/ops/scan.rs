//! Leaf operators: `Scan` (sequential) and `IndexScan` (planned access
//! path). Both emit stride-1 tuples in ascending-RowId order — the base
//! of the canonical order every downstream operator preserves — and
//! track RowIds only when a reordered join will need them.

use std::rc::Rc;

use crate::error::Result;
use crate::row::{Row, RowId};
use crate::table::Table;
use crate::txn::Snapshot;

use super::{Batch, ExecCtx, NodeStats, Operator, Vis};
use crate::sql::plan::AccessPath;

/// Full scan under a snapshot: merge-walk the table's sorted
/// stamped-rid list against the RowId-ordered scan stream, so only the
/// (usually few) stamped rows pay for visibility resolution — every
/// other slot's newest version is visible to every snapshot.
fn scan_visible<'t>(table: &'t Table, snap: &Snapshot) -> Vec<(RowId, &'t Row)> {
    let dirty = table.stamped_rids_sorted();
    let mut di = 0;
    let mut out = Vec::with_capacity(table.len());
    for (rid, newest) in table.scan() {
        while di < dirty.len() && dirty[di] < rid {
            di += 1;
        }
        if di < dirty.len() && dirty[di] == rid {
            if let Some(row) = table.visible_row(rid, snap) {
                out.push((rid, row));
            }
        } else {
            out.push((rid, newest));
        }
    }
    out
}

/// Sequential scan of the base table.
pub(super) struct Scan<'a> {
    cx: Rc<ExecCtx<'a>>,
    table: &'a Table,
    name: &'a str,
    out: Option<Batch<'a>>,
    stats: Option<NodeStats>,
}

impl<'a> Scan<'a> {
    pub(super) fn new(cx: Rc<ExecCtx<'a>>, table: &'a Table, name: &'a str) -> Scan<'a> {
        Scan {
            cx,
            table,
            name,
            out: None,
            stats: None,
        }
    }

    fn produce(&mut self) -> Result<Batch<'a>> {
        let mut tuples = Vec::with_capacity(self.table.len());
        let mut rids: Vec<RowId> = Vec::new();
        // `scan` walks the newest version of every physical slot in
        // ascending-RowId order; under a snapshot each stamped rid
        // resolves to its visible version instead (or drops out).
        let mut push = |rid: RowId, row: &'a Row| {
            tuples.push(row);
            if self.cx.needs_canonical {
                rids.push(rid);
            }
        };
        match self.cx.vis(self.table) {
            Vis::All => {
                for (rid, row) in self.table.scan() {
                    push(rid, row);
                }
            }
            Vis::Snap(s) => {
                for (rid, row) in scan_visible(self.table, s) {
                    push(rid, row);
                }
            }
        }
        Ok(Batch::Tuples {
            tuples,
            rids,
            stride: 1,
        })
    }

    fn describe_node(&self) -> String {
        format!("Scan [{}]", self.name)
    }

    fn estimate(&self) -> Option<f64> {
        Some(self.table.len() as f64)
    }
}

operator_impl!(Scan, leaf);

/// Base access through the plan's index probes: RowId sets are fetched
/// and intersected (smallest first), sorted ascending so the stream
/// order matches a sequential scan exactly.
pub(super) struct IndexScan<'a> {
    cx: Rc<ExecCtx<'a>>,
    table: &'a Table,
    name: &'a str,
    access: &'a AccessPath,
    est: f64,
    out: Option<Batch<'a>>,
    stats: Option<NodeStats>,
}

impl<'a> IndexScan<'a> {
    pub(super) fn new(
        cx: Rc<ExecCtx<'a>>,
        table: &'a Table,
        name: &'a str,
        access: &'a AccessPath,
        est: f64,
    ) -> IndexScan<'a> {
        IndexScan {
            cx,
            table,
            name,
            access,
            est,
            out: None,
            stats: None,
        }
    }

    fn produce(&mut self) -> Result<Batch<'a>> {
        let vis = self.cx.vis(self.table);
        let stream: Vec<(RowId, &crate::row::Row)> = match self.access.fetch_row_ids(self.table)? {
            None => match vis {
                Vis::All => self.table.scan().collect(),
                Vis::Snap(s) => scan_visible(self.table, s),
            },
            Some(fetched) if vis.is_all() => fetched
                .into_iter()
                .map(|rid| (rid, self.table.get(rid).expect("index holds live ids")))
                .collect(),
            Some(fetched) => {
                // Indexes hold the union of every version's keys, so the
                // fetched set is a superset under a snapshot: resolve
                // each rid to its visible version and re-verify the
                // consumed conjuncts against it.
                let mut stream = Vec::with_capacity(fetched.len());
                for rid in fetched {
                    let Some(row) = vis.row(self.table, rid) else {
                        continue;
                    };
                    if !self.access.matches_row(self.table, row)? {
                        continue;
                    }
                    stream.push((rid, row));
                }
                stream
            }
        };
        let mut tuples = Vec::with_capacity(stream.len());
        let mut rids: Vec<RowId> = Vec::new();
        for (rid, row) in stream {
            tuples.push(row);
            if self.cx.needs_canonical {
                rids.push(rid);
            }
        }
        Ok(Batch::Tuples {
            tuples,
            rids,
            stride: 1,
        })
    }

    fn describe_node(&self) -> String {
        format!("IndexScan [{} via {}]", self.name, self.access.describe())
    }

    fn estimate(&self) -> Option<f64> {
        Some(self.est)
    }
}

operator_impl!(IndexScan, leaf);
