//! Leaf operators: `Scan` (sequential) and `IndexScan` (planned access
//! path). Both emit stride-1 tuples in ascending-RowId order — the base
//! of the canonical order every downstream operator preserves — and
//! track RowIds only when a reordered join will need them.

use std::rc::Rc;

use crate::error::Result;
use crate::row::RowId;
use crate::table::Table;

use super::{Batch, ExecCtx, NodeStats, Operator};
use crate::sql::plan::AccessPath;

/// Sequential scan of the base table.
pub(super) struct Scan<'a> {
    cx: Rc<ExecCtx<'a>>,
    table: &'a Table,
    name: &'a str,
    out: Option<Batch<'a>>,
    stats: Option<NodeStats>,
}

impl<'a> Scan<'a> {
    pub(super) fn new(cx: Rc<ExecCtx<'a>>, table: &'a Table, name: &'a str) -> Scan<'a> {
        Scan {
            cx,
            table,
            name,
            out: None,
            stats: None,
        }
    }

    fn produce(&mut self) -> Result<Batch<'a>> {
        let mut tuples = Vec::with_capacity(self.table.len());
        let mut rids: Vec<RowId> = Vec::new();
        for (rid, row) in self.table.scan() {
            tuples.push(row);
            if self.cx.needs_canonical {
                rids.push(rid);
            }
        }
        Ok(Batch::Tuples {
            tuples,
            rids,
            stride: 1,
        })
    }

    fn describe_node(&self) -> String {
        format!("Scan [{}]", self.name)
    }

    fn estimate(&self) -> Option<f64> {
        Some(self.table.len() as f64)
    }
}

operator_impl!(Scan, leaf);

/// Base access through the plan's index probes: RowId sets are fetched
/// and intersected (smallest first), sorted ascending so the stream
/// order matches a sequential scan exactly.
pub(super) struct IndexScan<'a> {
    cx: Rc<ExecCtx<'a>>,
    table: &'a Table,
    name: &'a str,
    access: &'a AccessPath,
    est: f64,
    out: Option<Batch<'a>>,
    stats: Option<NodeStats>,
}

impl<'a> IndexScan<'a> {
    pub(super) fn new(
        cx: Rc<ExecCtx<'a>>,
        table: &'a Table,
        name: &'a str,
        access: &'a AccessPath,
        est: f64,
    ) -> IndexScan<'a> {
        IndexScan {
            cx,
            table,
            name,
            access,
            est,
            out: None,
            stats: None,
        }
    }

    fn produce(&mut self) -> Result<Batch<'a>> {
        let stream: Vec<(RowId, &crate::row::Row)> = match self.access.fetch_row_ids(self.table)? {
            None => self.table.scan().collect(),
            Some(fetched) => fetched
                .into_iter()
                .map(|rid| (rid, self.table.get(rid).expect("index holds live ids")))
                .collect(),
        };
        let mut tuples = Vec::with_capacity(stream.len());
        let mut rids: Vec<RowId> = Vec::new();
        for (rid, row) in stream {
            tuples.push(row);
            if self.cx.needs_canonical {
                rids.push(rid);
            }
        }
        Ok(Batch::Tuples {
            tuples,
            rids,
            stride: 1,
        })
    }

    fn describe_node(&self) -> String {
        format!("IndexScan [{} via {}]", self.name, self.access.describe())
    }

    fn estimate(&self) -> Option<f64> {
        Some(self.est)
    }
}

operator_impl!(IndexScan, leaf);
