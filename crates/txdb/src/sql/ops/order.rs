//! `Order`, `TopK` and `Limit`: the sort/truncate tail of the tree.
//!
//! Over the borrowed tuple stream, `Order` full-sorts by key (charging
//! one sort-key entry per tuple for its auxiliary arrays) and the fused
//! `TopK` keeps a bounded binary heap of `k + 1` entries instead of
//! sorting everything. Over aggregated output rows, `Order` sorts by
//! output column without charging — the rows are already materialized
//! and exempt. `Limit` truncates either stream shape.

use std::cmp::Ordering;
use std::rc::Rc;

use crate::error::{Result, TxdbError};
use crate::index::OrdKey;
use crate::row::Row;
use crate::value::Value;

use super::expr::{cell, is_qualified_suffix};
use super::{Batch, ExecCtx, NodeStats, Operator};
use crate::sql::ast::SelectStmt;
use crate::sql::budget::SORT_KEY_BYTES;

/// Heap entry for bounded top-k: orders by the sort key (reversed for
/// DESC), ties broken by input sequence so results match a stable sort.
struct TopKEntry<'a> {
    key: &'a Value,
    seq: usize,
    desc: bool,
}

impl TopKEntry<'_> {
    fn order(&self, other: &Self) -> Ordering {
        let keys = OrdKey::cmp_values(self.key, other.key);
        let keys = if self.desc { keys.reverse() } else { keys };
        keys.then(self.seq.cmp(&other.seq))
    }
}

impl PartialEq for TopKEntry<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.order(other) == Ordering::Equal
    }
}
impl Eq for TopKEntry<'_> {}
impl PartialOrd for TopKEntry<'_> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TopKEntry<'_> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.order(other)
    }
}

/// Indices of the top-`k` tuples under the sort order, themselves sorted —
/// identical to a stable sort followed by `truncate(k)`, in O(n log k).
fn top_k_indices<'a>(keys: impl Iterator<Item = &'a Value>, k: usize, desc: bool) -> Vec<usize> {
    use std::collections::BinaryHeap;
    if k == 0 {
        return Vec::new();
    }
    let mut heap: BinaryHeap<TopKEntry<'a>> = BinaryHeap::with_capacity(k + 1);
    for (seq, key) in keys.enumerate() {
        heap.push(TopKEntry { key, seq, desc });
        if heap.len() > k {
            heap.pop();
        }
    }
    heap.into_sorted_vec().into_iter().map(|e| e.seq).collect()
}

/// `ORDER BY` over aggregation output columns (group keys or aggregate
/// names), shared by both executors.
pub(crate) fn sort_aggregated_output(
    sel: &SelectStmt,
    columns: &[String],
    out_rows: &mut [Vec<Value>],
) -> Result<()> {
    let Some((col, desc)) = &sel.order_by else {
        return Ok(());
    };
    let target = col.to_string();
    let idx = columns
        .iter()
        .position(|c| c == &target || is_qualified_suffix(c, &target))
        .ok_or_else(|| {
            TxdbError::Parse(format!(
                "ORDER BY `{target}` must reference an output column of the aggregation"
            ))
        })?;
    out_rows.sort_by(|a, b| {
        let ord = OrdKey::cmp_values(&a[idx], &b[idx]);
        if *desc {
            ord.reverse()
        } else {
            ord
        }
    });
    Ok(())
}

/// Select the tuples at `selected` indices out of the flat stream.
fn permute<'a>(tuples: &[&'a Row], stride: usize, selected: &[usize]) -> Vec<&'a Row> {
    let mut out = Vec::with_capacity(selected.len() * stride);
    for &i in selected {
        out.extend_from_slice(&tuples[i * stride..(i + 1) * stride]);
    }
    out
}

/// Full sort by the `ORDER BY` key (tuple stream), or by output column
/// (aggregated rows).
pub(super) struct Order<'a> {
    cx: Rc<ExecCtx<'a>>,
    child: Box<dyn Operator<'a> + 'a>,
    sel: &'a SelectStmt,
    out: Option<Batch<'a>>,
    stats: Option<NodeStats>,
}

impl<'a> Order<'a> {
    pub(super) fn new(
        cx: Rc<ExecCtx<'a>>,
        child: Box<dyn Operator<'a> + 'a>,
        sel: &'a SelectStmt,
    ) -> Order<'a> {
        Order {
            cx,
            child,
            sel,
            out: None,
            stats: None,
        }
    }

    fn apply(&mut self, input: Batch<'a>) -> Result<Batch<'a>> {
        let (col, desc) = self.sel.order_by.as_ref().expect("lowered with ORDER BY");
        match input {
            Batch::Tuples { tuples, stride, .. } => {
                let layout = self.cx.layout;
                let count = tuples.len() / stride;
                // The sort's auxiliary arrays (key pointers + permutation)
                // charge the budget for their lifetime — before column
                // resolution, matching the pre-refactor charge order.
                let sort_charge = count * SORT_KEY_BYTES;
                self.cx.budget.charge(sort_charge)?;
                let idx = layout.resolve(col)?;
                let keys: Vec<&Value> = (0..count)
                    .map(|i| cell(layout, &tuples[i * stride..(i + 1) * stride], idx))
                    .collect();
                let mut order: Vec<usize> = (0..count).collect();
                order.sort_by(|&a, &b| {
                    let ord = OrdKey::cmp_values(keys[a], keys[b]);
                    if *desc {
                        ord.reverse()
                    } else {
                        ord
                    }
                });
                let out = permute(&tuples, stride, &order);
                self.cx.budget.release(sort_charge);
                Ok(Batch::Tuples {
                    tuples: out,
                    rids: Vec::new(),
                    stride,
                })
            }
            Batch::Rows { columns, mut rows } => {
                sort_aggregated_output(self.sel, &columns, &mut rows)?;
                Ok(Batch::Rows { columns, rows })
            }
        }
    }

    fn describe_node(&self) -> String {
        let (col, desc) = self.sel.order_by.as_ref().expect("lowered with ORDER BY");
        format!("Order [{col}{}]", if *desc { " desc" } else { "" })
    }

    fn estimate(&self) -> Option<f64> {
        // A pure reordering: the child's cardinality estimate carries.
        self.child.estimated_rows()
    }
}

operator_impl!(Order);

/// Fused `ORDER BY ... LIMIT k` over the tuple stream: a bounded heap
/// never sorts more than `k` entries.
pub(super) struct TopK<'a> {
    cx: Rc<ExecCtx<'a>>,
    child: Box<dyn Operator<'a> + 'a>,
    sel: &'a SelectStmt,
    k: usize,
    out: Option<Batch<'a>>,
    stats: Option<NodeStats>,
}

impl<'a> TopK<'a> {
    pub(super) fn new(
        cx: Rc<ExecCtx<'a>>,
        child: Box<dyn Operator<'a> + 'a>,
        sel: &'a SelectStmt,
        k: usize,
    ) -> TopK<'a> {
        TopK {
            cx,
            child,
            sel,
            k,
            out: None,
            stats: None,
        }
    }

    fn apply(&mut self, input: Batch<'a>) -> Result<Batch<'a>> {
        let Batch::Tuples { tuples, stride, .. } = input else {
            unreachable!("TopK is only lowered over the tuple stream")
        };
        let (col, desc) = self.sel.order_by.as_ref().expect("lowered with ORDER BY");
        let layout = self.cx.layout;
        let count = tuples.len() / stride;
        let sort_charge = self.k.saturating_add(1) * SORT_KEY_BYTES;
        self.cx.budget.charge(sort_charge)?;
        let idx = layout.resolve(col)?;
        let keys = (0..count).map(|i| cell(layout, &tuples[i * stride..(i + 1) * stride], idx));
        let selected = top_k_indices(keys, self.k, *desc);
        let out = permute(&tuples, stride, &selected);
        self.cx.budget.release(sort_charge);
        Ok(Batch::Tuples {
            tuples: out,
            rids: Vec::new(),
            stride,
        })
    }

    fn describe_node(&self) -> String {
        let (col, desc) = self.sel.order_by.as_ref().expect("lowered with ORDER BY");
        format!(
            "TopK [{col}{}, k={}]",
            if *desc { " desc" } else { "" },
            self.k
        )
    }

    fn estimate(&self) -> Option<f64> {
        let k = self.k as f64;
        Some(self.child.estimated_rows().map_or(k, |c| c.min(k)))
    }
}

operator_impl!(TopK);

/// Plain `LIMIT k`: keep the first `k` rows of either stream shape.
pub(super) struct Limit<'a> {
    cx: Rc<ExecCtx<'a>>,
    child: Box<dyn Operator<'a> + 'a>,
    k: usize,
    out: Option<Batch<'a>>,
    stats: Option<NodeStats>,
}

impl<'a> Limit<'a> {
    pub(super) fn new(
        cx: Rc<ExecCtx<'a>>,
        child: Box<dyn Operator<'a> + 'a>,
        k: usize,
    ) -> Limit<'a> {
        Limit {
            cx,
            child,
            k,
            out: None,
            stats: None,
        }
    }

    fn apply(&mut self, input: Batch<'a>) -> Result<Batch<'a>> {
        Ok(match input {
            Batch::Tuples {
                mut tuples, stride, ..
            } => {
                let count = tuples.len() / stride;
                tuples.truncate(count.min(self.k) * stride);
                Batch::Tuples {
                    tuples,
                    rids: Vec::new(),
                    stride,
                }
            }
            Batch::Rows { columns, mut rows } => {
                rows.truncate(self.k);
                Batch::Rows { columns, rows }
            }
        })
    }

    fn describe_node(&self) -> String {
        format!("Limit [{}]", self.k)
    }

    fn estimate(&self) -> Option<f64> {
        let k = self.k as f64;
        Some(self.child.estimated_rows().map_or(k, |c| c.min(k)))
    }
}

operator_impl!(Limit);
