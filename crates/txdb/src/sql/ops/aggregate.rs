//! `Aggregate`: grouped aggregation over the filtered tuple stream.
//!
//! Groups are keyed on [`OrdKey`] tuples (total value order), so group
//! output order is value order — no per-row string rendering. This is
//! where the stream switches from borrowed tuples to materialized
//! output rows; `ORDER BY` and `LIMIT` over the aggregation run as
//! separate downstream operators.

use std::collections::BTreeMap;
use std::rc::Rc;

use crate::error::{Result, TxdbError};
use crate::index::OrdKey;
use crate::value::{DataType, Value};

use super::expr::{cell, slot_name};
use super::{Batch, ExecCtx, NodeStats, Operator};
use crate::sql::ast::{AggFunc, Projection, SelectItem, SelectStmt};
use crate::sql::budget::GROUP_ENTRY_BYTES;

/// Fold non-null values with an aggregate function (`COUNT(*)` is handled
/// by the callers, which know the raw group size).
pub(crate) fn aggregate_values(func: AggFunc, values: &[&Value]) -> Result<Value> {
    Ok(match func {
        AggFunc::Count => Value::Int(values.len() as i64),
        AggFunc::Sum | AggFunc::Avg => {
            let mut sum = 0.0;
            let mut all_int = true;
            for v in values {
                match v {
                    Value::Int(i) => sum += *i as f64,
                    Value::Float(x) => {
                        all_int = false;
                        sum += x;
                    }
                    other => {
                        return Err(TxdbError::TypeMismatch {
                            expected: DataType::Float,
                            got: format!("{other}"),
                            context: format!("{}()", func.keyword()),
                        })
                    }
                }
            }
            if func == AggFunc::Avg {
                if values.is_empty() {
                    Value::Null
                } else {
                    Value::Float(sum / values.len() as f64)
                }
            } else if all_int {
                Value::Int(sum as i64)
            } else {
                Value::Float(sum)
            }
        }
        AggFunc::Min => values
            .iter()
            .copied()
            .min_by(|a, b| OrdKey::cmp_values(a, b))
            .cloned()
            .unwrap_or(Value::Null),
        AggFunc::Max => values
            .iter()
            .copied()
            .max_by(|a, b| OrdKey::cmp_values(a, b))
            .cloned()
            .unwrap_or(Value::Null),
    })
}

pub(super) struct Aggregate<'a> {
    cx: Rc<ExecCtx<'a>>,
    child: Box<dyn Operator<'a> + 'a>,
    sel: &'a SelectStmt,
    out: Option<Batch<'a>>,
    stats: Option<NodeStats>,
}

impl<'a> Aggregate<'a> {
    pub(super) fn new(
        cx: Rc<ExecCtx<'a>>,
        child: Box<dyn Operator<'a> + 'a>,
        sel: &'a SelectStmt,
    ) -> Aggregate<'a> {
        Aggregate {
            cx,
            child,
            sel,
            out: None,
            stats: None,
        }
    }

    fn apply(&mut self, input: Batch<'a>) -> Result<Batch<'a>> {
        let Batch::Tuples { tuples, stride, .. } = input else {
            unreachable!("Aggregate runs on the borrowed tuple stream")
        };
        let sel = self.sel;
        let layout = self.cx.layout;
        let budget = self.cx.budget;
        let Projection::Items(items) = &sel.projection else {
            return Err(TxdbError::Parse(
                "SELECT * cannot be combined with GROUP BY".into(),
            ));
        };
        let group_idxs: Vec<usize> = sel
            .group_by
            .iter()
            .map(|c| layout.resolve(c))
            .collect::<Result<_>>()?;
        // Validate: plain columns must appear in GROUP BY.
        for item in items {
            if let SelectItem::Column(c) = item {
                let idx = layout.resolve(c)?;
                if !group_idxs.contains(&idx) {
                    return Err(TxdbError::Parse(format!(
                        "column `{c}` must appear in GROUP BY or inside an aggregate"
                    )));
                }
            }
        }
        let count = tuples.len().checked_div(stride).unwrap_or(0);
        let mut groups: BTreeMap<Vec<OrdKey>, Vec<usize>> = BTreeMap::new();
        // The group map charges one entry per distinct key as it grows, so
        // a high-cardinality GROUP BY fails while accumulating, before any
        // output row exists. The per-member index lists are proportional
        // to the incoming (already materialized, uncharged) tuple stream
        // and follow its exemption.
        let mut group_charged = 0usize;
        for i in 0..count {
            let t = &tuples[i * stride..(i + 1) * stride];
            let key: Vec<OrdKey> = group_idxs
                .iter()
                .map(|&g| OrdKey(cell(layout, t, g).clone()))
                .collect();
            let before = groups.len();
            groups.entry(key).or_default().push(i);
            if groups.len() > before {
                budget.charge(GROUP_ENTRY_BYTES)?;
                group_charged += GROUP_ENTRY_BYTES;
            }
        }
        // A global aggregate over zero rows still yields one output row.
        if groups.is_empty() && group_idxs.is_empty() {
            groups.insert(Vec::new(), Vec::new());
        }

        let qualified = !sel.joins.is_empty();
        let columns: Vec<String> = items
            .iter()
            .map(|item| match item {
                SelectItem::Column(c) => layout.resolve(c).map(|p| slot_name(layout, qualified, p)),
                SelectItem::Aggregate { func, arg } => Ok(match arg {
                    Some(c) => format!("{}({})", func.keyword(), c),
                    None => format!("{}(*)", func.keyword()),
                }),
            })
            .collect::<Result<_>>()?;

        let mut out_rows = Vec::with_capacity(groups.len());
        for (key, members) in &groups {
            let mut out = Vec::with_capacity(items.len());
            for item in items {
                match item {
                    SelectItem::Column(c) => {
                        let idx = layout.resolve(c)?;
                        let pos = group_idxs
                            .iter()
                            .position(|&g| g == idx)
                            .expect("validated");
                        out.push(key[pos].0.clone());
                    }
                    SelectItem::Aggregate { func, arg } => match arg {
                        None => out.push(Value::Int(members.len() as i64)),
                        Some(c) => {
                            let idx = layout.resolve(c)?;
                            let values: Vec<&Value> = members
                                .iter()
                                .map(|&i| cell(layout, &tuples[i * stride..(i + 1) * stride], idx))
                                .filter(|v| !v.is_null())
                                .collect();
                            out.push(aggregate_values(*func, &values)?);
                        }
                    },
                }
            }
            out_rows.push(out);
        }
        budget.release(group_charged);
        Ok(Batch::Rows {
            columns,
            rows: out_rows,
        })
    }

    fn describe_node(&self) -> String {
        let aggs = match &self.sel.projection {
            Projection::Items(items) => items
                .iter()
                .filter(|i| matches!(i, SelectItem::Aggregate { .. }))
                .count(),
            Projection::Star => 0,
        };
        if self.sel.group_by.is_empty() {
            format!("Aggregate [global, aggs={aggs}]")
        } else {
            let keys: Vec<String> = self.sel.group_by.iter().map(|c| c.to_string()).collect();
            format!("Aggregate [group_by=({}), aggs={aggs}]", keys.join(", "))
        }
    }

    fn estimate(&self) -> Option<f64> {
        None
    }
}

operator_impl!(Aggregate);
