//! Expression machinery shared by the operator tree and the reference
//! executor: borrowed-tuple cell access, per-statement predicate
//! compilation, and output-column naming.

use crate::error::Result;
use crate::row::Row;
use crate::value::Value;

use super::super::ast::SqlExpr;
use super::super::plan::Layout;

pub(crate) const NULL_VALUE: Value = Value::Null;

/// Whether a join key never matches — the single definition
/// ([`Value::is_excluded_join_key`]) shared by every strategy's build
/// and probe sides in both executors, so all generations agree.
pub(crate) fn join_key_excluded(v: &Value) -> bool {
    v.is_excluded_join_key()
}

/// A joined row is a tuple of `&Row`, one per FROM-order table. Fetch the
/// value at a layout position without cloning.
pub(crate) fn cell<'a>(layout: &Layout, tuple: &[&'a Row], pos: usize) -> &'a Value {
    let slot = &layout.slots[pos];
    tuple[slot.table_ord]
        .get(slot.col_idx)
        .unwrap_or(&NULL_VALUE)
}

/// [`cell`] over a tuple whose positions follow the plan's join execution
/// order: `map[table_ord]` is the table's position in the tuple. (After
/// the final canonicalization step the stream is back in FROM order and
/// the plain [`cell`] applies.)
pub(crate) fn cell_mapped<'a>(
    layout: &Layout,
    map: &[usize],
    tuple: &[&'a Row],
    pos: usize,
) -> &'a Value {
    let slot = &layout.slots[pos];
    tuple[map[slot.table_ord]]
        .get(slot.col_idx)
        .unwrap_or(&NULL_VALUE)
}

/// Evaluate a WHERE (sub)expression against a borrowed row tuple (in
/// execution order, see [`cell_mapped`]). Same semantics as the reference
/// path: NULL comparisons are false, literals are coerced to the column
/// type when possible.
pub(crate) fn eval_expr(
    layout: &Layout,
    map: &[usize],
    expr: &SqlExpr,
    tuple: &[&Row],
) -> Result<bool> {
    Ok(match expr {
        SqlExpr::Cmp { column, op, value } => {
            let idx = layout.resolve(column)?;
            let cv = cell_mapped(layout, map, tuple, idx);
            if cv.is_null() || value.is_null() {
                false
            } else {
                let coerced = value
                    .coerce_to(layout.slots[idx].ty)
                    .unwrap_or_else(|_| value.clone());
                op.eval(cv, &coerced).unwrap_or(false)
            }
        }
        SqlExpr::Like { column, pattern } => {
            let idx = layout.resolve(column)?;
            cell_mapped(layout, map, tuple, idx)
                .as_text()
                .is_some_and(|s| s.to_lowercase().contains(&pattern.to_lowercase()))
        }
        SqlExpr::IsNull { column, negated } => {
            let idx = layout.resolve(column)?;
            cell_mapped(layout, map, tuple, idx).is_null() != *negated
        }
        SqlExpr::And(a, b) => {
            eval_expr(layout, map, a, tuple)? && eval_expr(layout, map, b, tuple)?
        }
        SqlExpr::Or(a, b) => eval_expr(layout, map, a, tuple)? || eval_expr(layout, map, b, tuple)?,
        SqlExpr::Not(a) => !eval_expr(layout, map, a, tuple)?,
    })
}

/// A WHERE conjunct pre-compiled against the layout: column references
/// resolved to slots, literals coerced to the column type, LIKE patterns
/// lowercased — once per statement instead of once per row.
pub(crate) enum Compiled {
    Cmp {
        slot: usize,
        op: crate::predicate::CmpOp,
        value: Value,
    },
    Like {
        slot: usize,
        needle: String,
    },
    IsNull {
        slot: usize,
        negated: bool,
    },
    And(Box<Compiled>, Box<Compiled>),
    Or(Box<Compiled>, Box<Compiled>),
    Not(Box<Compiled>),
    /// Subtree whose columns did not resolve at compile time: evaluated
    /// per row by [`eval_expr`], preserving the executor's lazy
    /// unknown/ambiguous-column error semantics exactly (the error only
    /// surfaces if a row actually reaches the subtree).
    Deferred(SqlExpr),
}

pub(crate) fn compile_expr(layout: &Layout, expr: &SqlExpr) -> Compiled {
    match expr {
        SqlExpr::Cmp { column, op, value } => match layout.resolve(column) {
            // A NULL literal never matches (checked on the *uncoerced*
            // literal, as in `eval_expr`); defer so the semantics —
            // including literals that only become NULL through coercion —
            // stay byte-identical to the reference path.
            Ok(_) if value.is_null() => Compiled::Deferred(expr.clone()),
            Ok(slot) => {
                let value = value
                    .coerce_to(layout.slots[slot].ty)
                    .unwrap_or_else(|_| value.clone());
                Compiled::Cmp {
                    slot,
                    op: *op,
                    value,
                }
            }
            Err(_) => Compiled::Deferred(expr.clone()),
        },
        SqlExpr::Like { column, pattern } => match layout.resolve(column) {
            Ok(slot) => Compiled::Like {
                slot,
                needle: pattern.to_lowercase(),
            },
            Err(_) => Compiled::Deferred(expr.clone()),
        },
        SqlExpr::IsNull { column, negated } => match layout.resolve(column) {
            Ok(slot) => Compiled::IsNull {
                slot,
                negated: *negated,
            },
            Err(_) => Compiled::Deferred(expr.clone()),
        },
        SqlExpr::And(a, b) => Compiled::And(
            Box::new(compile_expr(layout, a)),
            Box::new(compile_expr(layout, b)),
        ),
        SqlExpr::Or(a, b) => Compiled::Or(
            Box::new(compile_expr(layout, a)),
            Box::new(compile_expr(layout, b)),
        ),
        SqlExpr::Not(a) => Compiled::Not(Box::new(compile_expr(layout, a))),
    }
}

pub(crate) fn eval_compiled(
    layout: &Layout,
    map: &[usize],
    c: &Compiled,
    tuple: &[&Row],
) -> Result<bool> {
    Ok(match c {
        Compiled::Cmp { slot, op, value } => {
            let cv = cell_mapped(layout, map, tuple, *slot);
            // The literal was non-NULL pre-coercion (NULL literals defer),
            // so only the cell's nullness gates the comparison — exactly
            // the reference path's order of checks.
            if cv.is_null() {
                false
            } else {
                op.eval(cv, value).unwrap_or(false)
            }
        }
        Compiled::Like { slot, needle } => cell_mapped(layout, map, tuple, *slot)
            .as_text()
            .is_some_and(|s| s.to_lowercase().contains(needle)),
        Compiled::IsNull { slot, negated } => {
            cell_mapped(layout, map, tuple, *slot).is_null() != *negated
        }
        Compiled::And(a, b) => {
            eval_compiled(layout, map, a, tuple)? && eval_compiled(layout, map, b, tuple)?
        }
        Compiled::Or(a, b) => {
            eval_compiled(layout, map, a, tuple)? || eval_compiled(layout, map, b, tuple)?
        }
        Compiled::Not(a) => !eval_compiled(layout, map, a, tuple)?,
        Compiled::Deferred(e) => eval_expr(layout, map, e, tuple)?,
    })
}

/// Output column name for a layout position (qualified when joining).
pub(crate) fn slot_name(layout: &Layout, qualified: bool, pos: usize) -> String {
    let slot = &layout.slots[pos];
    if qualified {
        format!("{}.{}", slot.table, slot.column)
    } else {
        slot.column.clone()
    }
}

/// Whether `qualified` is `<anything>.<name>` — suffix match without
/// building a scratch string per probe.
pub(crate) fn is_qualified_suffix(qualified: &str, name: &str) -> bool {
    qualified.len() > name.len()
        && qualified.ends_with(name)
        && qualified.as_bytes()[qualified.len() - name.len() - 1] == b'.'
}
