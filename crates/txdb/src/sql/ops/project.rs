//! `Project`: the root of every lowered tree — resolve the projection
//! to layout positions and clone the selected cells into output rows.
//! This is the only place (outside aggregation) where whole values are
//! cloned; aggregated streams arrive already materialized and pass
//! through unchanged.

use std::rc::Rc;

use crate::error::Result;
use crate::value::Value;

use super::expr::{cell, slot_name};
use super::{Batch, ExecCtx, NodeStats, Operator};
use crate::sql::ast::{Projection, SelectItem, SelectStmt};

pub(super) struct Project<'a> {
    cx: Rc<ExecCtx<'a>>,
    child: Box<dyn Operator<'a> + 'a>,
    sel: &'a SelectStmt,
    out: Option<Batch<'a>>,
    stats: Option<NodeStats>,
}

impl<'a> Project<'a> {
    pub(super) fn new(
        cx: Rc<ExecCtx<'a>>,
        child: Box<dyn Operator<'a> + 'a>,
        sel: &'a SelectStmt,
    ) -> Project<'a> {
        Project {
            cx,
            child,
            sel,
            out: None,
            stats: None,
        }
    }

    fn apply(&mut self, input: Batch<'a>) -> Result<Batch<'a>> {
        let (tuples, stride) = match input {
            Batch::Tuples { tuples, stride, .. } => (tuples, stride),
            // Aggregation already materialized and named its output.
            rows @ Batch::Rows { .. } => return Ok(rows),
        };
        let layout = self.cx.layout;
        let qualified = !self.sel.joins.is_empty();
        let out_positions: Vec<usize> = match &self.sel.projection {
            Projection::Star => (0..layout.slots.len()).collect(),
            Projection::Items(items) => items
                .iter()
                .map(|i| match i {
                    SelectItem::Column(c) => layout.resolve(c),
                    SelectItem::Aggregate { .. } => {
                        unreachable!("aggregates lower through Aggregate")
                    }
                })
                .collect::<Result<_>>()?,
        };
        let columns: Vec<String> = out_positions
            .iter()
            .map(|&p| slot_name(layout, qualified, p))
            .collect();
        let count = tuples.len() / stride;
        let rows: Vec<Vec<Value>> = (0..count)
            .map(|i| {
                let t = &tuples[i * stride..(i + 1) * stride];
                out_positions
                    .iter()
                    .map(|&p| cell(layout, t, p).clone())
                    .collect()
            })
            .collect();
        Ok(Batch::Rows { columns, rows })
    }

    fn describe_node(&self) -> String {
        let items = match &self.sel.projection {
            Projection::Star => "*".to_string(),
            Projection::Items(items) => items
                .iter()
                .map(|i| match i {
                    SelectItem::Column(c) => c.to_string(),
                    SelectItem::Aggregate { func, arg } => match arg {
                        Some(c) => format!("{}({})", func.keyword(), c),
                        None => format!("{}(*)", func.keyword()),
                    },
                })
                .collect::<Vec<_>>()
                .join(", "),
        };
        format!("Project [{items}]")
    }

    fn estimate(&self) -> Option<f64> {
        // Projection never changes cardinality.
        self.child.estimated_rows()
    }
}

operator_impl!(Project);
