//! The physical operator tree: `SELECT` execution as composable
//! operators.
//!
//! [`lower`] turns a [`SelectPlan`] into a tree of physical operators —
//! `Scan`/`IndexScan`, `Filter`, the three join strategies
//! (`IndexProbeJoin`, `BuildHashJoin` with its partitioned and hot-key
//! variants, `MergeRangeJoin`), `Canonicalize`, `Aggregate`,
//! `Order`/`TopK`, `Limit` and `Project` — and [`drive`] runs the tree
//! to a result set. Each operator upholds the executor's three
//! contracts:
//!
//! 1. **Canonical order** — every operator emits (or preserves) the
//!    lexicographic FROM-order RowId tuple order both executors share.
//!    Reordered joins carry RowIds through the stream and the
//!    `Canonicalize` node restores FROM order before output.
//! 2. **Budget accounting** — every materializing structure (build
//!    maps, partition lists, pushdown probe sets, merge match buffers,
//!    group maps, sort keys) charges the [`ExecBudget`] while live and
//!    releases when dropped, in exactly the pre-refactor executor's
//!    sequence: a node's transient charges release before its parent
//!    charges anything.
//! 3. **Atomic failure** — a failed charge aborts the whole query with
//!    `ResourceExhausted` before any output row is assembled; no
//!    partial result ever escapes.
//!
//! Operators run batch-at-once behind a Volcano-style
//! `open`/`next`/`close` surface: [`Operator::open`] drains the input
//! operator and stages the node's full output — recording actual rows
//! and the node's own budget peak for `EXPLAIN ANALYZE` — then
//! [`Operator::next`] hands the batch over once and
//! [`Operator::close`] drops buffers. Batch execution keeps results
//! byte-identical to the reference executor while the per-node stats
//! make estimator drift visible per operator instead of only at the
//! final result size.

use std::rc::Rc;

use crate::database::Database;
use crate::error::Result;
use crate::row::{Row, RowId};
use crate::table::Table;
use crate::txn::Snapshot;
use crate::value::Value;

use super::ast::SelectStmt;
use super::budget::ExecBudget;
use super::exec::ResultSet;
use super::plan::{AccessPath, JoinStrategy, Layout, SelectPlan};

// `open` boilerplate shared by every operator: pull the input (unary
// nodes), scope the budget's high-water mark around the node's own
// kernel (`produce` for leaves, `apply` for unary nodes) and record
// `NodeStats`. Defined before the operator submodules so legacy macro
// scoping makes it visible inside them.
macro_rules! operator_impl {
    (@shared) => {
        fn next(&mut self) -> crate::error::Result<Option<Batch<'a>>> {
            Ok(self.out.take())
        }
        fn close(&mut self) {
            self.out = None;
        }
        fn describe(&self) -> String {
            self.describe_node()
        }
        fn estimated_rows(&self) -> Option<f64> {
            self.estimate()
        }
        fn stats(&self) -> Option<NodeStats> {
            self.stats
        }
    };
    ($ty:ident, leaf) => {
        impl<'a> Operator<'a> for $ty<'a> {
            fn open(&mut self) -> crate::error::Result<()> {
                let saved = self.cx.budget.begin_scope();
                let result = self.produce();
                let peak = self.cx.budget.end_scope(saved);
                let batch = result?;
                self.stats = Some(NodeStats {
                    rows: batch.count(),
                    peak,
                });
                self.out = Some(batch);
                Ok(())
            }
            operator_impl!(@shared);
            fn input(&self) -> Option<&dyn Operator<'a>> {
                None
            }
        }
    };
    // Unary operators; the second argument is the field path to the
    // node's `ExecCtx` (the join operators keep theirs inside a shared
    // `JoinCore`).
    ($ty:ident) => {
        operator_impl!(@unary $ty, cx);
    };
    ($ty:ident, core) => {
        operator_impl!(@unary $ty, core.cx);
    };
    (@unary $ty:ident, $($cx:ident).+) => {
        impl<'a> Operator<'a> for $ty<'a> {
            fn open(&mut self) -> crate::error::Result<()> {
                let input = crate::sql::ops::pull(self.child.as_mut())?;
                let saved = self.$($cx).+.budget.begin_scope();
                let result = self.apply(input);
                let peak = self.$($cx).+.budget.end_scope(saved);
                let batch = result?;
                self.stats = Some(NodeStats {
                    rows: batch.count(),
                    peak,
                });
                self.out = Some(batch);
                Ok(())
            }
            operator_impl!(@shared);
            fn input(&self) -> Option<&dyn Operator<'a>> {
                Some(self.child.as_ref())
            }
        }
    };
}

mod aggregate;
mod canonical;
mod exchange;
pub(crate) mod expr;
mod filter;
mod join;
mod order;
mod project;
mod scan;

// The grouped-aggregation fold and aggregated-output sort are shared
// with the naive reference executor in `super::exec`.
pub(crate) use aggregate::aggregate_values;
pub(crate) use order::sort_aggregated_output;

use aggregate::Aggregate;
use canonical::Canonicalize;
use exchange::Exchange;
use filter::Filter;
use join::{BuildHashJoin, IndexProbeJoin, MergeRangeJoin};
use order::{Limit, Order, TopK};
use project::Project;
use scan::{IndexScan, Scan};

/// The stream flowing between operators.
///
/// Up to aggregation the stream is the executor's borrowed-tuple form:
/// flat `&Row` tuples of `stride` tables each, with FROM-order RowIds
/// riding along only when a reordered join will need them to restore
/// canonical output order. `Aggregate` (and `Project`) switch to
/// materialized rows — the only places whole values are cloned.
#[derive(Debug)]
pub enum Batch<'a> {
    /// Borrowed tuples: `tuples.len() == count × stride`. `rids` is
    /// either empty or exactly parallel (one RowId per tuple slot).
    Tuples {
        /// Flat tuple storage, `stride` table rows per joined tuple.
        tuples: Vec<&'a Row>,
        /// FROM-order RowIds per tuple slot; empty unless a reordered
        /// join needs them for canonicalization.
        rids: Vec<RowId>,
        /// Number of table rows per tuple.
        stride: usize,
    },
    /// Materialized output rows with their column names.
    Rows {
        /// Output column names.
        columns: Vec<String>,
        /// Output rows.
        rows: Vec<Vec<Value>>,
    },
}

impl Batch<'_> {
    /// Logical row (tuple) count of the batch.
    pub fn count(&self) -> usize {
        match self {
            Batch::Tuples { tuples, stride, .. } => tuples.len() / (*stride).max(1),
            Batch::Rows { rows, .. } => rows.len(),
        }
    }
}

/// Execution statistics one operator records during [`Operator::open`]:
/// the actual output cardinality and the node's own high-water mark of
/// budget-tracked bytes (via [`ExecBudget::begin_scope`]). `EXPLAIN
/// ANALYZE` prints both next to the planner's estimate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeStats {
    /// Rows (tuples) the node emitted.
    pub rows: usize,
    /// Peak budget-tracked bytes while the node's own kernel ran.
    pub peak: usize,
}

/// One physical operator of the lowered tree.
///
/// The lifecycle is Volcano-shaped with batch semantics: `open`
/// computes the node's full output (draining the input operator first,
/// so budget charge/release sequencing matches the pre-refactor
/// executor exactly), `next` yields that batch once, `close` drops
/// buffers. The remaining methods expose the tree to `EXPLAIN`.
pub trait Operator<'a> {
    /// Execute the node: drain the input operator, build the output
    /// batch, record [`NodeStats`]. Errors (including budget
    /// exhaustion) propagate before any batch is staged.
    fn open(&mut self) -> Result<()>;
    /// The staged output batch — `Some` exactly once after a
    /// successful `open`.
    fn next(&mut self) -> Result<Option<Batch<'a>>>;
    /// Drop any remaining buffers.
    fn close(&mut self);
    /// One-line `EXPLAIN` label with the node's parameters, e.g.
    /// `BuildHashJoin [build.k, partitions=4, hot=1]`.
    fn describe(&self) -> String;
    /// The planner's estimated output cardinality, when it priced this
    /// node.
    fn estimated_rows(&self) -> Option<f64>;
    /// Stats recorded by `open`; `None` before execution.
    fn stats(&self) -> Option<NodeStats>;
    /// The input operator, for tree rendering (`None` for leaves).
    fn input(&self) -> Option<&dyn Operator<'a>>;
}

/// Run one operator through its full lifecycle and return its batch.
pub(crate) fn pull<'a>(op: &mut (dyn Operator<'a> + '_)) -> Result<Batch<'a>> {
    op.open()?;
    let batch = op.next()?.expect("open stages a batch exactly once");
    op.close();
    Ok(batch)
}

/// Row visibility for one table within one lowered tree.
///
/// `All` is the pre-MVCC fast path: every rid an index returns is live
/// and a row fetch is a plain [`Table::get`]. `Snap` routes every
/// access through [`Table::visible_row`] against the tree's snapshot.
/// [`ExecCtx::vis`] picks per table, so a query only pays the
/// visibility check on tables that actually carry version chains.
#[derive(Clone, Copy)]
pub(crate) enum Vis<'v> {
    /// Unchecked fast path — the table has exactly one (committed)
    /// version per row.
    All,
    /// Resolve each rid to the version visible under this snapshot.
    Snap(&'v Snapshot),
}

impl Vis<'_> {
    /// The version of `rid` this tree may read, if any.
    pub(crate) fn row<'t>(&self, table: &'t Table, rid: RowId) -> Option<&'t Row> {
        match self {
            Vis::All => table.get(rid),
            Vis::Snap(s) => table.visible_row(rid, s),
        }
    }

    /// Whether this is the unchecked fast path.
    pub(crate) fn is_all(&self) -> bool {
        matches!(self, Vis::All)
    }
}

/// Shared execution context threaded through every operator of one
/// lowered tree.
pub(crate) struct ExecCtx<'a> {
    pub(crate) layout: &'a Layout,
    /// Tuple positions follow the plan's join execution order:
    /// `exec_pos[table_ord]` is the table's position in a tuple.
    pub(crate) exec_pos: Vec<usize>,
    /// Whether reordered joins require RowId tracking and a final
    /// `Canonicalize` to restore FROM-order output.
    pub(crate) needs_canonical: bool,
    pub(crate) budget: &'a ExecBudget,
    /// The snapshot the tree reads under, resolved once by [`lower`].
    /// `None` means every touched table was MVCC-clean at lowering time
    /// — the unchecked fast path.
    pub(crate) snap: Option<Snapshot>,
    /// Rows per morsel for the tree's parallel operators (from
    /// [`SelectPlan::morsel_rows`]).
    pub(crate) morsel_rows: usize,
}

impl ExecCtx<'_> {
    /// Visibility for `table`. A clean table takes the unchecked fast
    /// path even under an explicit snapshot: its newest versions *are*
    /// the latest committed state, so results stay byte-identical to
    /// the pre-MVCC executor.
    pub(crate) fn vis(&self, table: &Table) -> Vis<'_> {
        match &self.snap {
            Some(s) if !table.mvcc_clean() => Vis::Snap(s),
            _ => Vis::All,
        }
    }
}

/// Lower a [`SelectPlan`] into its operator tree.
///
/// The tree mirrors the plan one node per decision: the access path
/// becomes `Scan` or `IndexScan`, pushed conjuncts a `Filter`, each
/// planned join the operator of its [`JoinStrategy`] followed by a
/// `Filter` for its staged residual conjuncts, then `Canonicalize`
/// (only when joins reordered), the aggregation or order/limit
/// pipeline, and `Project` at the root. Lowering allocates nothing and
/// touches no table data — all fetching happens inside
/// [`Operator::open`], preserving the pre-refactor error order.
pub fn lower<'a>(
    db: &'a Database,
    sel: &'a SelectStmt,
    plan: &'a SelectPlan,
    budget: &'a ExecBudget,
    snap: Option<&Snapshot>,
) -> Result<Box<dyn Operator<'a> + 'a>> {
    let base = db.table(&sel.table)?;
    let mut exec_pos = vec![usize::MAX; plan.layout.tables];
    exec_pos[0] = 0;
    for (step, pj) in plan.join_order.iter().enumerate() {
        exec_pos[pj.table_ord] = step + 1;
    }
    // Resolve the tree's visibility once. An explicit snapshot pins
    // reads for the whole query; otherwise any MVCC-dirty table
    // (in-flight or not-yet-vacuumed version chains) forces the
    // latest-committed snapshot so uncommitted writes never leak into
    // results. When every touched table is clean the tree carries no
    // snapshot at all and executes byte-identically to the pre-MVCC
    // path.
    let snap = match snap {
        Some(s) => Some(s.clone()),
        None => {
            let mut dirty = !base.mvcc_clean();
            for pj in &plan.join_order {
                if dirty {
                    break;
                }
                dirty = !db.table(&pj.table)?.mvcc_clean();
            }
            dirty.then(|| db.snapshot())
        }
    };
    let cx = Rc::new(ExecCtx {
        layout: &plan.layout,
        exec_pos,
        needs_canonical: plan.joins_reordered(),
        budget,
        snap,
        morsel_rows: plan.morsel_rows,
    });

    // The base fetch: serial `Scan`/`IndexScan` + pushed `Filter` pair,
    // or — when the planner granted the fetch workers — the
    // morsel-parallel `Exchange` leaf, which fuses the pushed conjuncts
    // into its workers (the filter work is what makes parallelism pay).
    let mut node: Box<dyn Operator<'a> + 'a> = if plan.scan_workers > 1 {
        let est = if plan.pushed.is_empty() {
            match &plan.access {
                AccessPath::FullScan => base.len() as f64,
                _ => plan.estimated_selectivity * base.len() as f64,
            }
        } else {
            plan.estimated_base_rows
        };
        Box::new(Exchange::new(
            Rc::clone(&cx),
            base,
            &sel.table,
            &plan.access,
            &plan.pushed,
            plan.scan_workers,
            est,
        ))
    } else {
        let mut node: Box<dyn Operator<'a> + 'a> = match &plan.access {
            AccessPath::FullScan => Box::new(Scan::new(Rc::clone(&cx), base, &sel.table)),
            access => Box::new(IndexScan::new(
                Rc::clone(&cx),
                base,
                &sel.table,
                access,
                plan.estimated_selectivity * base.len() as f64,
            )),
        };
        if !plan.pushed.is_empty() {
            node = Box::new(Filter::pushed(
                Rc::clone(&cx),
                node,
                &plan.pushed,
                plan.estimated_base_rows,
            ));
        }
        node
    };
    for (step, pj) in plan.join_order.iter().enumerate() {
        let right = db.table(&pj.table)?;
        node = match pj.strategy {
            JoinStrategy::IndexProbe => {
                Box::new(IndexProbeJoin::new(Rc::clone(&cx), node, right, pj))
            }
            JoinStrategy::BuildHash => {
                Box::new(BuildHashJoin::new(Rc::clone(&cx), node, right, pj))
            }
            JoinStrategy::MergeRange => {
                Box::new(MergeRangeJoin::new(Rc::clone(&cx), node, right, pj))
            }
        };
        if !plan.stages[step].is_empty() {
            node = Box::new(Filter::staged(Rc::clone(&cx), node, &plan.stages[step]));
        }
    }
    if cx.needs_canonical {
        node = Box::new(Canonicalize::new(Rc::clone(&cx), node));
    }
    if sel.projection.has_aggregates() || !sel.group_by.is_empty() {
        node = Box::new(Aggregate::new(Rc::clone(&cx), node, sel));
        if sel.order_by.is_some() {
            node = Box::new(Order::new(Rc::clone(&cx), node, sel));
        }
        if let Some(k) = sel.limit {
            node = Box::new(Limit::new(Rc::clone(&cx), node, k));
        }
    } else {
        match (&sel.order_by, sel.limit) {
            (Some(_), Some(k)) => node = Box::new(TopK::new(Rc::clone(&cx), node, sel, k)),
            (Some(_), None) => node = Box::new(Order::new(Rc::clone(&cx), node, sel)),
            (None, Some(k)) => node = Box::new(Limit::new(Rc::clone(&cx), node, k)),
            (None, None) => {}
        }
    }
    Ok(Box::new(Project::new(cx, node, sel)))
}

/// Run a lowered tree to its result set.
pub fn drive<'a>(root: &mut (dyn Operator<'a> + '_)) -> Result<ResultSet> {
    match pull(root)? {
        Batch::Rows { columns, rows } => Ok(ResultSet { columns, rows }),
        Batch::Tuples { .. } => unreachable!("lower always roots the tree at Project"),
    }
}

/// Render the operator tree for `EXPLAIN`: one line per node, indented
/// two spaces per depth, annotated with the planner's estimate and —
/// after execution, for `EXPLAIN ANALYZE` — the actual row count and
/// the node's budget peak.
pub fn render(root: &dyn Operator<'_>, analyze: bool) -> Vec<String> {
    fn walk(node: &dyn Operator<'_>, depth: usize, analyze: bool, lines: &mut Vec<String>) {
        let mut line = format!("{}{}", "  ".repeat(depth), node.describe());
        let mut annot = Vec::new();
        if let Some(est) = node.estimated_rows() {
            annot.push(format!("est={est:.0} rows"));
        }
        if analyze {
            if let Some(s) = node.stats() {
                annot.push(format!("actual={} rows", s.rows));
                annot.push(format!("peak={} B", s.peak));
            }
        }
        if !annot.is_empty() {
            line.push_str(&format!(" ({})", annot.join(", ")));
        }
        lines.push(line);
        if let Some(child) = node.input() {
            walk(child, depth + 1, analyze, lines);
        }
    }
    let mut lines = Vec::new();
    walk(root, 0, analyze, &mut lines);
    lines
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::Database;
    use crate::error::TxdbError;
    use crate::sql::ast::Statement;
    use crate::sql::exec::{execute_script, execute_select_reference};
    use crate::sql::parser::parse_statement;
    use crate::sql::plan::{plan_select_with, PlanOptions};

    /// Lower `sel` under `opts` and drive the tree against `budget` —
    /// the operator-tree equivalent of the old monolithic
    /// `execute_select_budgeted`, used to point fault injection at
    /// `open` of every materializing operator.
    fn run_tree(
        db: &Database,
        sel: &crate::sql::ast::SelectStmt,
        opts: &PlanOptions,
        budget: &ExecBudget,
    ) -> Result<ResultSet> {
        let plan = plan_select_with(db, sel, opts)?;
        let mut root = lower(db, sel, &plan, budget, None)?;
        drive(root.as_mut())
    }

    /// Two tables with an unindexed float join key plus range indexes —
    /// the BuildHash / MergeRange fixture of the executor tests.
    fn edge_db() -> Database {
        let mut db = Database::new();
        execute_script(
            &mut db,
            "CREATE TABLE lt (l_id INT PRIMARY KEY, k FLOAT);
             CREATE TABLE rt (r_id INT PRIMARY KEY, k FLOAT, tag TEXT);
             INSERT INTO lt VALUES (1, 1.0), (2, 2.0), (3, 'NaN'), (4, NULL), (5, 2.0), (6, 9.0);
             INSERT INTO rt VALUES (10, 1.0, 'a'), (11, 2.0, 'b'), (12, 2.0, 'c'),
                                   (13, 'NaN', 'd'), (14, NULL, 'e'), (15, 7.0, 'f');",
        )
        .unwrap();
        db.table_mut("lt").unwrap().create_range_index("k").unwrap();
        db.table_mut("rt").unwrap().create_range_index("k").unwrap();
        db
    }

    /// 10k-row skewed build side (one key holds ~half the rows) probed
    /// from a small outer table — the partitioned-path fixture.
    fn skewed_db() -> Database {
        let mut db = Database::new();
        execute_script(
            &mut db,
            "CREATE TABLE probe (p_id INT PRIMARY KEY, k INT);
             CREATE TABLE build (b_id INT PRIMARY KEY, k INT)",
        )
        .unwrap();
        for i in 0..10_000i64 {
            let k = if i % 2 == 0 { 42 } else { i };
            db.insert("build", crate::row![i, k]).unwrap();
        }
        for i in 0..40i64 {
            let k = match i % 4 {
                0 => 42,
                1 => 2 * i + 1,
                2 => 2 * i,
                _ => 9_999,
            };
            db.insert("probe", crate::row![i, k]).unwrap();
        }
        db
    }

    #[test]
    fn forced_exhaustion_mid_tree_is_atomic() {
        // Sweep the fault injector across every charge the operator
        // tree performs — the build maps, pushdown probe sets, merge
        // buffers, group maps and sort keys all charge inside `open` of
        // their operator. Each run either completes with output
        // identical to the reference or fails with ResourceExhausted —
        // never partial output.
        let db = edge_db();
        for q in [
            "SELECT lt.l_id, rt.tag FROM lt JOIN rt ON rt.k = lt.k",
            "SELECT lt.l_id, rt.tag FROM lt JOIN rt ON rt.k = lt.k WHERE lt.l_id = 2",
            "SELECT lt.k, COUNT(*) FROM lt JOIN rt ON rt.k = lt.k GROUP BY lt.k",
            "SELECT lt.l_id FROM lt JOIN rt ON rt.k = lt.k ORDER BY rt.tag DESC",
            "SELECT lt.l_id FROM lt JOIN rt ON rt.k = lt.k ORDER BY rt.tag LIMIT 2",
        ] {
            let Statement::Select(sel) = parse_statement(q).unwrap() else {
                unreachable!()
            };
            let reference = execute_select_reference(&db, &sel).unwrap();
            let mut failures = 0;
            for n in 0..64 {
                let budget = ExecBudget::failing_after(n);
                match run_tree(&db, &sel, &PlanOptions::default(), &budget) {
                    Ok(rs) => assert_eq!(rs, reference, "query: {q}, n = {n}"),
                    Err(TxdbError::ResourceExhausted { .. }) => failures += 1,
                    Err(e) => panic!("unexpected error for {q} at n = {n}: {e}"),
                }
            }
            assert!(failures > 0, "sweep never tripped a charge: {q}");
            let budget = ExecBudget::failing_after(usize::MAX);
            assert_eq!(
                run_tree(&db, &sel, &PlanOptions::default(), &budget).unwrap(),
                reference,
                "an injector that never fires must not change results: {q}"
            );
        }
    }

    #[test]
    fn forced_exhaustion_in_the_partitioned_operator_is_atomic() {
        let db = skewed_db();
        let q = "SELECT probe.p_id, build.b_id FROM probe JOIN build ON build.k = probe.k";
        let Statement::Select(sel) = parse_statement(q).unwrap() else {
            unreachable!()
        };
        let opts = PlanOptions {
            memory_budget: Some(256 * 1024),
            ..PlanOptions::default()
        };
        let reference = execute_select_reference(&db, &sel).unwrap();
        let mut failures = 0;
        for n in 0..80 {
            let budget = ExecBudget::failing_after(n);
            match run_tree(&db, &sel, &opts, &budget) {
                Ok(rs) => assert_eq!(rs, reference, "n = {n}"),
                Err(TxdbError::ResourceExhausted { .. }) => failures += 1,
                Err(e) => panic!("unexpected error at n = {n}: {e}"),
            }
        }
        assert!(failures > 0, "partitioned sweep never tripped a charge");
    }

    #[test]
    fn forced_exhaustion_under_parallel_execution_is_atomic() {
        // The injector pointed at the worker pool: parallel scans and
        // hash builds charge through a `SharedBudget` lease, so the
        // worker that trips the injector must cancel its siblings and
        // fail the statement atomically — reference-identical output or
        // `ResourceExhausted`, never partial output. The sweep
        // completing at all proves every scoped worker joined (a leaked
        // worker would deadlock the scope). The deliberately panicking
        // worker is covered at the pool layer
        // (`pool::tests::a_panicking_worker_propagates_and_joins_all_siblings`).
        let db = skewed_db();
        let parallel = PlanOptions::parallel();
        let partitioned = PlanOptions {
            memory_budget: Some(256 * 1024),
            ..PlanOptions::parallel()
        };
        for (q, opts, charges) in [
            // Parallel scan with the filter fused into the workers: like
            // the serial Scan + Filter pair it charges nothing (output
            // is not auxiliary memory), so the sweep must never trip —
            // every run must be reference-identical.
            (
                "SELECT b_id FROM build WHERE k > 100 AND b_id < 5000",
                &parallel,
                false,
            ),
            // Parallel scan feeding a charging consumer (top-k heap), so
            // exhaustion fires with parallel partial output in flight.
            (
                "SELECT b_id FROM build WHERE k > 100 ORDER BY k DESC LIMIT 7",
                &parallel,
                true,
            ),
            // Parallel in-place hash build over the 10k-row build side:
            // every worker's partial map charges through the lease.
            (
                "SELECT probe.p_id, build.b_id FROM probe JOIN build ON build.k = probe.k",
                &parallel,
                true,
            ),
            // Parallel partitioned build (the budget in `opts` makes the
            // plan partition; the injected budget itself is unlimited).
            (
                "SELECT probe.p_id, build.b_id FROM probe JOIN build ON build.k = probe.k",
                &partitioned,
                true,
            ),
        ] {
            let Statement::Select(sel) = parse_statement(q).unwrap() else {
                unreachable!()
            };
            let plan = plan_select_with(&db, &sel, opts).unwrap();
            assert!(
                plan.parallel_count() > 0,
                "fixture must actually plan parallel operators: {q}"
            );
            let reference = execute_select_reference(&db, &sel).unwrap();
            let mut failures = 0;
            for n in 0..64 {
                let budget = ExecBudget::failing_after(n);
                match run_tree(&db, &sel, opts, &budget) {
                    Ok(rs) => assert_eq!(rs, reference, "query: {q}, n = {n}"),
                    Err(TxdbError::ResourceExhausted { .. }) => failures += 1,
                    Err(e) => panic!("unexpected error for {q} at n = {n}: {e}"),
                }
            }
            if charges {
                assert!(failures > 0, "parallel sweep never tripped a charge: {q}");
            } else {
                assert_eq!(
                    failures, 0,
                    "a chargeless parallel scan tripped the injector: {q}"
                );
            }
            let budget = ExecBudget::failing_after(usize::MAX);
            assert_eq!(
                run_tree(&db, &sel, opts, &budget).unwrap(),
                reference,
                "an injector that never fires must not change results: {q}"
            );
        }
    }

    #[test]
    fn every_node_records_stats_after_a_driven_run() {
        let db = edge_db();
        let q = "SELECT lt.l_id, rt.tag FROM lt JOIN rt ON rt.k = lt.k ORDER BY rt.tag LIMIT 3";
        let Statement::Select(sel) = parse_statement(q).unwrap() else {
            unreachable!()
        };
        let opts = PlanOptions::default();
        let plan = plan_select_with(&db, &sel, &opts).unwrap();
        let budget = ExecBudget::unlimited();
        let mut root = lower(&db, &sel, &plan, &budget, None).unwrap();
        let rs = drive(root.as_mut()).unwrap();
        let mut node: Option<&dyn Operator> = Some(root.as_ref());
        let mut seen = 0;
        while let Some(op) = node {
            let stats = op
                .stats()
                .unwrap_or_else(|| panic!("node `{}` recorded no stats", op.describe()));
            if seen == 0 {
                assert_eq!(stats.rows, rs.rows.len(), "root actual rows match output");
            }
            seen += 1;
            node = op.input();
        }
        assert!(seen >= 4, "tree unexpectedly shallow: {seen} nodes");
        assert_eq!(budget.used(), 0, "all transient charges released");
    }
}
