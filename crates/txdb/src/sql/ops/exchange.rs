//! `Exchange`: the morsel-parallel base-table leaf.
//!
//! When the planner grants the base fetch more than one worker
//! ([`SelectPlan::scan_workers`](crate::sql::plan::SelectPlan)), [`lower`](super::lower)
//! emits this node in place of the serial `Scan`/`IndexScan` (+ pushed
//! `Filter`) pair. The fetch splits into contiguous morsels — RowId
//! ranges of a full scan, index-order chunks of a fetched RowId set —
//! that workers claim off the shared pool ([`scatter`]). Each worker
//! performs the complete per-row pipeline for its morsel: visibility
//! resolution under a snapshot (including the superset re-verification
//! an index fetch needs), then evaluation of the pushed conjuncts,
//! compiled once on the driving thread and shared read-only. Fusing the
//! filter into the fetch is what makes the parallelism pay: the
//! per-row predicate work dominates a scan, and it parallelizes
//! embarrassingly while the pointer pushes alone would not.
//!
//! Morsels are contiguous slices of an ascending-RowId stream, so
//! concatenating the partial outputs in morsel order *is* the serial
//! stream — the canonical-order contract survives without any sort or
//! merge network, and results stay byte-identical to `worker_threads =
//! 1`. Errors follow the pool's cancellation protocol (lowest
//! completed morsel's error, siblings cancelled, no partial output).

use std::rc::Rc;

use crate::error::Result;
use crate::row::{Row, RowId};
use crate::table::Table;

use super::expr::{compile_expr, eval_compiled, Compiled};
use super::{Batch, ExecCtx, NodeStats, Operator};
use crate::sql::ast::SqlExpr;
use crate::sql::plan::{AccessPath, Layout};
use crate::sql::pool::{effective_workers, morsel_bounds, scatter};

/// One morsel's locally-ordered output.
struct Part<'a> {
    tuples: Vec<&'a Row>,
    rids: Vec<RowId>,
}

/// Shared per-statement state the workers read: the compiled pushed
/// conjuncts and the layout context needed to evaluate them.
struct Kernel<'a, 'k> {
    layout: &'a Layout,
    exec_pos: &'k [usize],
    compiled: &'k [Compiled],
    needs_rids: bool,
}

impl<'a> Kernel<'a, '_> {
    /// Run the fused filter for one fetched row and emit it into the
    /// morsel's partial output when every conjunct holds.
    fn emit(&self, part: &mut Part<'a>, rid: RowId, row: &'a Row) -> Result<()> {
        let tuple = [row];
        for c in self.compiled {
            if !eval_compiled(self.layout, self.exec_pos, c, &tuple)? {
                return Ok(());
            }
        }
        part.tuples.push(row);
        if self.needs_rids {
            part.rids.push(rid);
        }
        Ok(())
    }
}

/// Morsel-parallel base-table fetch with the pushed filter fused in.
pub(super) struct Exchange<'a> {
    cx: Rc<ExecCtx<'a>>,
    table: &'a Table,
    name: &'a str,
    access: &'a AccessPath,
    pushed: &'a [SqlExpr],
    /// Planned degree of parallelism (≥ 2, or this node is not lowered).
    workers: usize,
    est: f64,
    /// Workers the fetch actually ran with, for `EXPLAIN ANALYZE`: the
    /// executor demotes when the actual row count yields fewer morsels
    /// than planned workers (1 = the run was effectively serial).
    ran_workers: Option<usize>,
    out: Option<Batch<'a>>,
    stats: Option<NodeStats>,
}

impl<'a> Exchange<'a> {
    #[allow(clippy::too_many_arguments)]
    pub(super) fn new(
        cx: Rc<ExecCtx<'a>>,
        table: &'a Table,
        name: &'a str,
        access: &'a AccessPath,
        pushed: &'a [SqlExpr],
        workers: usize,
        est: f64,
    ) -> Exchange<'a> {
        Exchange {
            cx,
            table,
            name,
            access,
            pushed,
            workers,
            est,
            ran_workers: None,
            out: None,
            stats: None,
        }
    }

    fn produce(&mut self) -> Result<Batch<'a>> {
        let cx = Rc::clone(&self.cx);
        let table = self.table;
        let access = self.access;
        let morsel_rows = cx.morsel_rows;
        // Resolve visibility once; workers share the borrowed snapshot.
        let snap = match cx.vis(table) {
            super::Vis::All => None,
            super::Vis::Snap(_) => cx.snap.as_ref(),
        };
        let compiled: Vec<Compiled> = self
            .pushed
            .iter()
            .map(|e| compile_expr(cx.layout, e))
            .collect();
        let kernel = Kernel {
            layout: cx.layout,
            exec_pos: &cx.exec_pos,
            compiled: &compiled,
            needs_rids: cx.needs_canonical,
        };

        let parts: Vec<Part<'a>> = match access.fetch_row_ids(table)? {
            None => {
                // Full scan: morsels are contiguous RowId ranges. Under
                // a snapshot each worker merge-walks the (shared,
                // sorted) stamped-rid list against its range, exactly
                // like the serial `scan_visible`.
                let ranges = table.morsel_ranges(morsel_rows);
                let dirty = snap.map(|_| table.stamped_rids_sorted());
                let workers = effective_workers(self.workers, ranges.len());
                self.ran_workers = Some(workers);
                scatter(workers, ranges.len(), |m| {
                    let (lo, hi) = ranges[m];
                    let mut part = Part {
                        tuples: Vec::new(),
                        rids: Vec::new(),
                    };
                    match snap {
                        None => {
                            for (rid, row) in table.scan_range(lo, hi) {
                                kernel.emit(&mut part, rid, row)?;
                            }
                        }
                        Some(s) => {
                            let dirty = dirty.as_deref().expect("staged with snapshot");
                            let mut di = dirty.partition_point(|&d| d < lo);
                            for (rid, newest) in table.scan_range(lo, hi) {
                                while di < dirty.len() && dirty[di] < rid {
                                    di += 1;
                                }
                                let row = if di < dirty.len() && dirty[di] == rid {
                                    match table.visible_row(rid, s) {
                                        Some(row) => row,
                                        None => continue,
                                    }
                                } else {
                                    newest
                                };
                                kernel.emit(&mut part, rid, row)?;
                            }
                        }
                    }
                    Ok(part)
                })?
            }
            Some(fetched) => {
                // Index access: morsels are chunks of the ascending
                // fetched set. Under a snapshot the set is a version
                // superset — resolve visibility and re-verify the
                // consumed conjuncts per rid, like the serial
                // `IndexScan`.
                let bounds = morsel_bounds(fetched.len(), morsel_rows);
                let workers = effective_workers(self.workers, bounds.len());
                self.ran_workers = Some(workers);
                scatter(workers, bounds.len(), |m| {
                    let (start, end) = bounds[m];
                    let mut part = Part {
                        tuples: Vec::new(),
                        rids: Vec::new(),
                    };
                    for &rid in &fetched[start..end] {
                        let row = match snap {
                            None => table.get(rid).expect("index holds live ids"),
                            Some(s) => {
                                let Some(row) = table.visible_row(rid, s) else {
                                    continue;
                                };
                                if !access.matches_row(table, row)? {
                                    continue;
                                }
                                row
                            }
                        };
                        kernel.emit(&mut part, rid, row)?;
                    }
                    Ok(part)
                })?
            }
        };

        // The merge rule: concatenate partials in morsel order. Morsels
        // are contiguous slices of one ascending stream, so this *is*
        // the serial output.
        let mut tuples = Vec::with_capacity(parts.iter().map(|p| p.tuples.len()).sum());
        let mut rids = Vec::new();
        for mut part in parts {
            tuples.append(&mut part.tuples);
            rids.append(&mut part.rids);
        }
        Ok(Batch::Tuples {
            tuples,
            rids,
            stride: 1,
        })
    }

    fn describe_node(&self) -> String {
        let mut params = match self.access {
            AccessPath::FullScan => self.name.to_string(),
            access => format!("{} via {}", self.name, access.describe()),
        };
        params.push_str(&format!(", workers={}", self.workers));
        if let Some(ran) = self.ran_workers {
            if ran != self.workers {
                params.push_str(&format!(", ran_workers={ran}"));
            }
        }
        if !self.pushed.is_empty() {
            params.push_str(&format!(", pushed: {}", self.pushed.len()));
        }
        format!("Exchange [{params}]")
    }

    fn estimate(&self) -> Option<f64> {
        Some(self.est)
    }
}

operator_impl!(Exchange, leaf);
