//! `Filter`: apply compiled WHERE conjuncts to the tuple stream.
//!
//! Two lowering roles share the operator: *pushed* base-only conjuncts
//! run before the first join multiplies rows (with the planner's
//! post-filter base estimate attached), and *staged* residual conjuncts
//! run right after the join step that binds their tables. Conjuncts are
//! compiled once — slot resolution, literal coercion — so the per-row
//! loop is comparison-only; unresolvable columns stay deferred and only
//! error when a row actually reaches them.

use std::rc::Rc;

use crate::error::Result;
use crate::row::RowId;

use super::expr::{compile_expr, eval_compiled};
use super::{Batch, ExecCtx, NodeStats, Operator};
use crate::sql::ast::SqlExpr;

pub(super) struct Filter<'a> {
    cx: Rc<ExecCtx<'a>>,
    child: Box<dyn Operator<'a> + 'a>,
    exprs: &'a [SqlExpr],
    role: &'static str,
    est: Option<f64>,
    out: Option<Batch<'a>>,
    stats: Option<NodeStats>,
}

impl<'a> Filter<'a> {
    /// Base-only pushed conjuncts, with the planner's estimated
    /// post-filter base cardinality.
    pub(super) fn pushed(
        cx: Rc<ExecCtx<'a>>,
        child: Box<dyn Operator<'a> + 'a>,
        exprs: &'a [SqlExpr],
        est: f64,
    ) -> Filter<'a> {
        Filter {
            cx,
            child,
            exprs,
            role: "pushed",
            est: Some(est),
            out: None,
            stats: None,
        }
    }

    /// Residual conjuncts staged after one join step.
    pub(super) fn staged(
        cx: Rc<ExecCtx<'a>>,
        child: Box<dyn Operator<'a> + 'a>,
        exprs: &'a [SqlExpr],
    ) -> Filter<'a> {
        Filter {
            cx,
            child,
            exprs,
            role: "staged",
            est: None,
            out: None,
            stats: None,
        }
    }

    fn apply(&mut self, input: Batch<'a>) -> Result<Batch<'a>> {
        let Batch::Tuples {
            tuples,
            rids,
            stride,
        } = input
        else {
            unreachable!("Filter runs on the borrowed tuple stream")
        };
        let cx = &self.cx;
        let compiled: Vec<_> = self
            .exprs
            .iter()
            .map(|e| compile_expr(cx.layout, e))
            .collect();
        let count = tuples.len() / stride;
        let mut kept = Vec::with_capacity(tuples.len());
        let mut kept_rids: Vec<RowId> = Vec::new();
        'tuple: for ti in 0..count {
            let t = &tuples[ti * stride..(ti + 1) * stride];
            for c in &compiled {
                if !eval_compiled(cx.layout, &cx.exec_pos, c, t)? {
                    continue 'tuple;
                }
            }
            kept.extend_from_slice(t);
            if cx.needs_canonical {
                kept_rids.extend_from_slice(&rids[ti * stride..(ti + 1) * stride]);
            }
        }
        Ok(Batch::Tuples {
            tuples: kept,
            rids: kept_rids,
            stride,
        })
    }

    fn describe_node(&self) -> String {
        format!("Filter [{}: {}]", self.role, self.exprs.len())
    }

    fn estimate(&self) -> Option<f64> {
        self.est
    }
}

operator_impl!(Filter);
