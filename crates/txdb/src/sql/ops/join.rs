//! The three join operators, one per [`JoinStrategy`]:
//! `IndexProbeJoin` (per-tuple index probes, with a lookup fallback for
//! legacy strategy-less plans), `BuildHashJoin` (in-place build map,
//! degrading to the partitioned + hot-key variant under budget
//! pressure), and `MergeRangeJoin` (tandem walk of the ordered index).
//!
//! Every strategy yields per-tuple buckets in ascending-RowId order and
//! emits in outer stream order — the canonical order both executors
//! share. All transient auxiliary structures (pushdown probe sets,
//! build maps, partition lists, merge match buffers) charge the budget
//! while they live and release together when the step's output is
//! assembled, so a node's charges are gone before its parent charges
//! anything.

use std::borrow::Cow;
use std::collections::HashMap;
use std::ops::Bound;
use std::rc::Rc;

use crate::error::Result;
use crate::index::OrdKey;
use crate::row::{Row, RowId};
use crate::table::{join_key_partition, Table};
use crate::value::Value;

use super::expr::{join_key_excluded, NULL_VALUE};
use super::{Batch, ExecCtx, NodeStats, Operator, Vis};
use crate::sql::budget::{
    build_partition_count, join_build_bytes, ExecBudget, JOIN_MAP_ENTRY_BYTES, JOIN_MAP_RID_BYTES,
};
use crate::sql::plan::{intersect_sorted, AccessPath, IndexProbe, PlannedJoin, Slot};
use crate::sql::pool::{effective_workers, morsel_bounds, scatter};

/// Priced bytes of a build map: bucket storage plus per-entry overhead.
fn join_map_priced_bytes(map: &HashMap<&Value, Vec<RowId>>) -> usize {
    map.values().map(Vec::len).sum::<usize>() * JOIN_MAP_RID_BYTES
        + map.len() * JOIN_MAP_ENTRY_BYTES
}

/// Morsel-parallel in-place hash build: workers claim contiguous chunks
/// of the build side — RowId ranges of a full build, index-order chunks
/// of the pushdown's fetched set — and build partial maps that merge in
/// morsel order. Every bucket is then the concatenation of ascending
/// sub-buckets, so the merged map is byte-identical to the serial build.
///
/// Budget protocol: workers charge each partial map to a
/// [`SharedBudget`](crate::sql::budget::SharedBudget) lease as it
/// materializes; the lease is absorbed back (even on failure, so injected
/// exhaustion stays sticky), the merge consumes the partials, their bytes
/// are released, and the *caller* charges the merged map through the
/// serial account exactly like the serial path. The partials' summed
/// footprint never exceeds the worst case the caller's `fits` probe
/// admitted, so against a real limit the lease charges cannot fail.
///
/// Returns the map and the worker count actually used (demoted when the
/// build yields fewer morsels than planned workers).
fn parallel_build_map<'t>(
    right: &'t Table,
    right_col: &str,
    build_rids: Option<&[RowId]>,
    workers: usize,
    morsel_rows: usize,
    budget: &ExecBudget,
) -> Result<(HashMap<&'t Value, Vec<RowId>>, usize)> {
    enum Morsels<'f> {
        Ranges(Vec<(RowId, RowId)>),
        Chunks(&'f [RowId], Vec<(usize, usize)>),
    }
    let morsels = match build_rids {
        None => Morsels::Ranges(right.morsel_ranges(morsel_rows)),
        Some(f) => Morsels::Chunks(f, morsel_bounds(f.len(), morsel_rows)),
    };
    let count = match &morsels {
        Morsels::Ranges(r) => r.len(),
        Morsels::Chunks(_, b) => b.len(),
    };
    let workers = effective_workers(workers, count);
    let lease = budget.lease();
    let parts = scatter(workers, count, |m| {
        let map = match &morsels {
            Morsels::Ranges(ranges) => {
                let (lo, hi) = ranges[m];
                right.join_map_range(right_col, lo, hi)?
            }
            Morsels::Chunks(fetched, bounds) => {
                let (start, end) = bounds[m];
                right.join_map_filtered(right_col, &fetched[start..end])?
            }
        };
        let bytes = join_map_priced_bytes(&map);
        lease.charge(bytes)?;
        Ok((map, bytes))
    });
    budget.absorb(&lease);
    let parts = parts?;
    let partial_bytes: usize = parts.iter().map(|(_, b)| *b).sum();
    let mut merged: HashMap<&Value, Vec<RowId>> = HashMap::new();
    for (part, _) in parts {
        for (k, mut bucket) in part {
            merged.entry(k).or_default().append(&mut bucket);
        }
    }
    budget.release(partial_bytes);
    Ok((merged, workers))
}

/// Per-outer-tuple match buckets for a merge join: walk the right side's
/// ordered-index entries once, in tandem with the outer keys sorted by
/// the canonical value order. `keys[i]` is `None` when tuple `i`'s key
/// never joins. The result is indexed by tuple position, so the caller
/// emits in original stream order — canonical order is preserved without
/// any re-sorting.
///
/// `filter` is the build-side pushdown's fetched RowId set: matched
/// buckets are intersected with it (both sides ascending, so the
/// intersection stays in canonical order), and when the pushdown probes
/// the join key itself the entries walk is clamped to those bounds
/// instead of visiting the whole index. Without a filter the buckets are
/// borrowed straight from the index — no allocation at all.
fn merge_match_buckets<'t>(
    right: &'t Table,
    right_col: &str,
    keys: &[Option<&Value>],
    filter: Option<&[RowId]>,
    clamp: Option<(Bound<&Value>, Bound<&Value>)>,
) -> Vec<Cow<'t, [RowId]>> {
    const EMPTY: &[RowId] = &[];
    let index = right
        .range_index(right_col)
        .expect("plan chose MergeRange only with an ordered index");
    let entries: Vec<(&Value, &[RowId])> = match clamp {
        Some((lo, hi)) => index
            .entries_range(lo, hi)
            .filter(|(v, _)| !join_key_excluded(v))
            .collect(),
        None => index
            .entries()
            .filter(|(v, _)| !join_key_excluded(v))
            .collect(),
    };
    let mut matches: Vec<Cow<'t, [RowId]>> = vec![Cow::Borrowed(EMPTY); keys.len()];
    let mut order: Vec<usize> = (0..keys.len()).filter(|&i| keys[i].is_some()).collect();
    order.sort_by(|&a, &b| {
        OrdKey::cmp_values(keys[a].expect("filtered"), keys[b].expect("filtered"))
    });
    let mut e = 0usize;
    // Duplicate outer keys are adjacent in `order` and land on the same
    // entry, so the (possibly intersected) bucket is computed once per
    // entry and cloned for repeats — a memcpy at worst, instead of
    // re-walking the filter set per outer tuple.
    let mut prev: Option<(usize, usize)> = None; // (entry idx, tuple idx)
    for &ti in &order {
        let k = keys[ti].expect("filtered");
        while e < entries.len() && OrdKey::cmp_values(entries[e].0, k).is_lt() {
            e += 1;
        }
        if e < entries.len() && OrdKey::cmp_values(entries[e].0, k).is_eq() {
            matches[ti] = match prev {
                Some((pe, pti)) if pe == e => matches[pti].clone(),
                _ => {
                    prev = Some((e, ti));
                    match filter {
                        Some(f) => Cow::Owned(intersect_sorted(entries[e].1, f)),
                        None => Cow::Borrowed(entries[e].1),
                    }
                }
            };
        }
    }
    matches
}

/// Per-outer-tuple match buckets for a budget-degraded hash join: the
/// build side is split into `nparts` RowId partitions (plan-identified
/// `hot` keys diverted into one small always-resident map), and only one
/// partition's hash map is resident at a time. Each probe key lives in
/// exactly one partition — or in the hot map — so filling `matched[ti]`
/// across passes appends at most one bucket per tuple and the result is
/// indexed by tuple position in ascending-RowId bucket order, the same
/// contract the in-place build satisfies. Byte charges: the partition
/// lists and hot map for the whole call, plus one resident partition map
/// at a time — that per-partition charge is what bounds the peak and
/// what an exhausted budget fails on, before any output is assembled.
///
/// With `workers > 1` the partitions — embarrassingly parallel, since
/// every probe key routes to exactly one partition XOR the hot map —
/// are claimed by pool workers instead of walked in sequence: each
/// worker builds its partition's resident map, probes the shared outer
/// keys, and returns positional `(tuple, bucket)` contributions that
/// merge without regard to completion order (at most one bucket ever
/// lands on a tuple, so ascending-RowId bucket order is preserved).
/// Concurrency is clamped so the resident maps' combined worst case
/// stays within the remaining budget: the partitioned variant exists to
/// bound the peak, and parallelism must not undo that. Returns the
/// matches and the worker count actually used.
#[allow(clippy::too_many_arguments)]
fn partitioned_join_matches(
    right: &Table,
    right_col: &str,
    build_rids: Option<&[RowId]>,
    nparts: usize,
    hot: &[Value],
    keys: &[Option<&Value>],
    budget: &ExecBudget,
    workers: usize,
) -> Result<(Vec<Vec<RowId>>, usize)> {
    let (parts, hot_map) = right.partition_join_rids(right_col, build_rids, nparts, hot)?;
    let setup = (parts.iter().map(Vec::len).sum::<usize>()
        + hot_map.values().map(Vec::len).sum::<usize>())
        * JOIN_MAP_RID_BYTES
        + hot_map.len() * JOIN_MAP_ENTRY_BYTES;
    budget.charge(setup)?;
    let mut matched: Vec<Vec<RowId>> = vec![Vec::new(); keys.len()];
    // Hot pass: heavy hitters join straight from the resident map, never
    // inflating a partition.
    for (ti, key) in keys.iter().enumerate() {
        if let Some(b) = key.and_then(|k| hot_map.get(k)) {
            matched[ti].extend_from_slice(b);
        }
    }
    // Clamp parallelism to however many worst-case resident maps the
    // remaining budget can hold at once (1 = the classic serial passes).
    let worst_part = parts
        .iter()
        .map(|p| p.len() * (JOIN_MAP_RID_BYTES + JOIN_MAP_ENTRY_BYTES))
        .max()
        .unwrap_or(0);
    let concurrent = match budget.limit() {
        Some(limit) if worst_part > 0 => (limit.saturating_sub(budget.used()) / worst_part).max(1),
        _ => workers,
    };
    let nonempty = parts.iter().filter(|p| !p.is_empty()).count();
    let workers = effective_workers(workers.min(concurrent), nonempty);
    if workers > 1 {
        let lease = budget.lease();
        let contribs = scatter(workers, nparts, |p| {
            let prids = &parts[p];
            let mut contrib: Vec<(usize, Vec<RowId>)> = Vec::new();
            if prids.is_empty() {
                return Ok(contrib);
            }
            let map = right.join_map_filtered(right_col, prids)?;
            let bytes = prids.len() * JOIN_MAP_RID_BYTES + map.len() * JOIN_MAP_ENTRY_BYTES;
            lease.charge(bytes)?;
            for (ti, key) in keys.iter().enumerate() {
                let Some(k) = key else { continue };
                if join_key_partition(k, nparts) != p {
                    continue;
                }
                if let Some(b) = map.get(k) {
                    contrib.push((ti, b.clone()));
                }
            }
            lease.release(bytes);
            Ok(contrib)
        });
        budget.absorb(&lease);
        for (ti, mut bucket) in contribs?.into_iter().flatten() {
            matched[ti].append(&mut bucket);
        }
    } else {
        for (p, prids) in parts.iter().enumerate() {
            if prids.is_empty() {
                continue;
            }
            let map = right.join_map_filtered(right_col, prids)?;
            let bytes = prids.len() * JOIN_MAP_RID_BYTES + map.len() * JOIN_MAP_ENTRY_BYTES;
            budget.charge(bytes)?;
            for (ti, key) in keys.iter().enumerate() {
                let Some(k) = key else { continue };
                // A key routes to exactly one partition; skip the probe
                // work on every other pass.
                if join_key_partition(k, nparts) != p {
                    continue;
                }
                if let Some(b) = map.get(k) {
                    matched[ti].extend_from_slice(b);
                }
            }
            budget.release(bytes);
        }
    }
    budget.release(setup);
    Ok((matched, workers))
}

/// Clamp bounds for a merge walk: the bounds of the pushdown probe on
/// the join key itself, when one exists. The fetched `filter` set is
/// what guarantees exactness (it reconciles NaN and intersects all
/// probes); the clamp only narrows the walk.
fn join_key_clamp<'p>(
    access: &'p AccessPath,
    right_col: &str,
) -> Option<(Bound<&'p Value>, Bound<&'p Value>)> {
    let AccessPath::Index(probes) = access else {
        return None;
    };
    probes
        .iter()
        .find(|p| p.column() == right_col)
        .map(|p| match p {
            IndexProbe::Eq { value, .. } => (Bound::Included(value), Bound::Included(value)),
            IndexProbe::Range { lo, hi, .. } => (lo.as_ref(), hi.as_ref()),
        })
}

/// State every join operator shares: the planned join step, its build
/// table, and the per-step accessors over the outer stream.
struct JoinCore<'a> {
    cx: Rc<ExecCtx<'a>>,
    right: &'a Table,
    pj: &'a PlannedJoin,
}

impl<'a> JoinCore<'a> {
    fn left_slot(&self) -> &'a Slot {
        &self.cx.layout.slots[self.pj.left_slot]
    }

    fn left_pos(&self) -> usize {
        self.cx.exec_pos[self.left_slot().table_ord]
    }

    /// Fetch the build-side pushdown's RowId set (skipped when the outer
    /// stream is empty — nothing to probe with) and charge its bytes.
    /// Returns the set and the step's running charge total.
    fn fetch_build_rids(&self, count: usize) -> Result<(Option<Vec<RowId>>, usize)> {
        let build_rids: Option<Vec<RowId>> = if count > 0 {
            self.pj.build_access.fetch_row_ids(self.right)?
        } else {
            None
        };
        let mut charged = 0usize;
        if let Some(rids) = &build_rids {
            let bytes = rids.len() * JOIN_MAP_RID_BYTES;
            self.cx.budget.charge(bytes)?;
            charged += bytes;
        }
        Ok((build_rids, charged))
    }

    /// Outer-tuple join keys for the strategies that stage matches per
    /// tuple (merge, partitioned): `None` marks a key that never joins.
    fn outer_keys(
        &self,
        tuples: &[&'a Row],
        stride: usize,
        count: usize,
    ) -> Vec<Option<&'a Value>> {
        let left_slot = self.left_slot();
        let left_pos = self.left_pos();
        (0..count)
            .map(|ti| {
                let key = tuples[ti * stride + left_pos]
                    .get(left_slot.col_idx)
                    .unwrap_or(&NULL_VALUE);
                (!join_key_excluded(key)).then_some(key)
            })
            .collect()
    }

    fn prefilter_suffix(&self) -> String {
        match &self.pj.build_access {
            AccessPath::FullScan => String::new(),
            access => format!(", prefilter={}", access.describe()),
        }
    }

    /// Visibility of the build table under this tree's snapshot.
    fn vis(&self) -> Vis<'_> {
        self.cx.vis(self.right)
    }

    /// Per-rid re-verification for visible execution: both the probed
    /// buckets and the pushdown's fetched set hold the union of every
    /// version's keys, so the *visible* version must still carry the
    /// outer join key and satisfy the consumed build-side conjuncts.
    fn verify_visible(&self, row: &Row, right_idx: usize, key: &Value) -> Result<bool> {
        Ok(row.get(right_idx) == Some(key) && self.pj.build_access.matches_row(self.right, row)?)
    }

    /// Column index of the build-side join key, for re-verification.
    fn right_idx(&self) -> Result<usize> {
        self.right.schema().require_column(&self.pj.right_col)
    }
}

/// The probe-loop epilogue shared by every strategy: emit the matched
/// bucket behind the outer tuple in bucket (ascending-RowId) order,
/// carrying FROM-order RowIds along when canonicalization will need
/// them.
struct JoinOutput<'a> {
    out: Vec<&'a Row>,
    out_rids: Vec<RowId>,
}

impl<'a> JoinOutput<'a> {
    fn new() -> JoinOutput<'a> {
        JoinOutput {
            out: Vec::new(),
            out_rids: Vec::new(),
        }
    }

    fn emit(
        &mut self,
        core: &JoinCore<'a>,
        right_idx: usize,
        key: &Value,
        bucket: &[RowId],
        t: &[&'a Row],
        t_rids: &[RowId],
    ) -> Result<()> {
        let right = core.right;
        let needs_canonical = core.cx.needs_canonical;
        let vis = core.vis();
        for &rid in bucket {
            let rrow = match vis {
                Vis::All => right.get(rid).expect("lookup returned live id"),
                // Under a snapshot the bucket is a version superset:
                // resolve the visible version and re-verify the match.
                Vis::Snap(_) => {
                    let Some(r) = vis.row(right, rid) else {
                        continue;
                    };
                    if !core.verify_visible(r, right_idx, key)? {
                        continue;
                    }
                    r
                }
            };
            self.out.extend_from_slice(t);
            self.out.push(rrow);
            if needs_canonical {
                self.out_rids.extend_from_slice(t_rids);
                self.out_rids.push(rid);
            }
        }
        Ok(())
    }

    fn into_batch(self, stride: usize) -> Batch<'a> {
        Batch::Tuples {
            tuples: self.out,
            rids: self.out_rids,
            stride: stride + 1,
        }
    }
}

/// Per-tuple index probes into the build side, intersected with the
/// build-side pushdown's fetched set when the planner priced one in. A
/// per-key scan fallback is kept for the strategy-less planner
/// generations, whose plans may probe unindexed columns.
pub(super) struct IndexProbeJoin<'a> {
    core: JoinCore<'a>,
    child: Box<dyn Operator<'a> + 'a>,
    out: Option<Batch<'a>>,
    stats: Option<NodeStats>,
}

impl<'a> IndexProbeJoin<'a> {
    pub(super) fn new(
        cx: Rc<ExecCtx<'a>>,
        child: Box<dyn Operator<'a> + 'a>,
        right: &'a Table,
        pj: &'a PlannedJoin,
    ) -> IndexProbeJoin<'a> {
        IndexProbeJoin {
            core: JoinCore { cx, right, pj },
            child,
            out: None,
            stats: None,
        }
    }

    fn apply(&mut self, input: Batch<'a>) -> Result<Batch<'a>> {
        let Batch::Tuples {
            tuples,
            rids,
            stride,
        } = input
        else {
            unreachable!("joins run on the borrowed tuple stream")
        };
        let core = &self.core;
        let right = core.right;
        let left_slot = core.left_slot();
        let left_pos = core.left_pos();
        let count = tuples.len() / stride;
        let right_idx = core.right_idx()?;
        let (build_rids, step_charged) = core.fetch_build_rids(count)?;
        let mut output = JoinOutput::new();
        for ti in 0..count {
            let t = &tuples[ti * stride..(ti + 1) * stride];
            let key = t[left_pos].get(left_slot.col_idx).unwrap_or(&NULL_VALUE);
            if join_key_excluded(key) {
                continue;
            }
            // Probe the bucket, then intersect with the build-side
            // pushdown's fetched set — the consumed conjuncts must hold,
            // exactly as the merge path enforces through its filter.
            let scan_bucket;
            let bucket: &[RowId] = match (right.index_bucket(&core.pj.right_col, key), &build_rids)
            {
                (Some(b), None) => b,
                (Some(b), Some(f)) => {
                    scan_bucket = intersect_sorted(b, f);
                    &scan_bucket
                }
                (None, filter) => {
                    let mut looked = right.lookup(&core.pj.right_col, key)?;
                    if let Some(f) = filter {
                        looked = intersect_sorted(&looked, f);
                    }
                    scan_bucket = looked;
                    &scan_bucket
                }
            };
            let t_rids = if core.cx.needs_canonical {
                &rids[ti * stride..(ti + 1) * stride]
            } else {
                &[]
            };
            output.emit(core, right_idx, key, bucket, t, t_rids)?;
        }
        core.cx.budget.release(step_charged);
        Ok(output.into_batch(stride))
    }

    fn describe_node(&self) -> String {
        format!(
            "IndexProbeJoin [{}.{}{}]",
            self.core.pj.table,
            self.core.pj.right_col,
            self.core.prefilter_suffix()
        )
    }

    fn estimate(&self) -> Option<f64> {
        self.core.pj.estimated_rows
    }
}

operator_impl!(IndexProbeJoin, core);

/// Classic build-side hash join, with two budget-driven variants: the
/// plan (or an exec-time degradation when the worst-case in-place
/// footprint no longer fits) may switch to the partitioned build, where
/// plan-identified hot keys stay in a small always-resident map and only
/// one partition's map is resident at a time.
pub(super) struct BuildHashJoin<'a> {
    core: JoinCore<'a>,
    child: Box<dyn Operator<'a> + 'a>,
    /// Partition count the node actually ran with (for `EXPLAIN
    /// ANALYZE`: exec-time degradation is invisible in the plan).
    ran_partitions: Option<usize>,
    /// Build workers the node actually ran with, when the plan granted
    /// it more than one (for `EXPLAIN ANALYZE`: the executor demotes
    /// when the build yields fewer morsels or the budget cannot hold
    /// concurrent partition maps; 1 = the build was effectively serial).
    ran_workers: Option<usize>,
    out: Option<Batch<'a>>,
    stats: Option<NodeStats>,
}

impl<'a> BuildHashJoin<'a> {
    pub(super) fn new(
        cx: Rc<ExecCtx<'a>>,
        child: Box<dyn Operator<'a> + 'a>,
        right: &'a Table,
        pj: &'a PlannedJoin,
    ) -> BuildHashJoin<'a> {
        BuildHashJoin {
            core: JoinCore { cx, right, pj },
            child,
            ran_partitions: None,
            ran_workers: None,
            out: None,
            stats: None,
        }
    }

    fn apply(&mut self, input: Batch<'a>) -> Result<Batch<'a>> {
        let Batch::Tuples {
            tuples,
            rids,
            stride,
        } = input
        else {
            unreachable!("joins run on the borrowed tuple stream")
        };
        let core = &self.core;
        let right = core.right;
        let pj = core.pj;
        let budget = core.cx.budget;
        let left_slot = core.left_slot();
        let left_pos = core.left_pos();
        let count = tuples.len() / stride;
        let right_idx = core.right_idx()?;
        let vis = core.vis();
        // Under a snapshot the build map is keyed on *visible* cells
        // (`join_map_visible`), so the pushdown's fetched set and the
        // partitioned variant — both built from newest versions only —
        // are bypassed; the consumed conjuncts are re-verified per rid
        // in `emit` instead.
        let (build_rids, mut step_charged) = if vis.is_all() {
            core.fetch_build_rids(count)?
        } else {
            (None, 0)
        };

        // Build partitions for this step: the plan's decision from
        // cardinality estimates, or an exec-time degradation when the
        // worst-case in-place footprint (every key distinct) no longer
        // fits the remaining budget. 1 is the classic resident build.
        let nparts = if count > 0 && vis.is_all() {
            let entering = build_rids.as_ref().map_or(right.len(), Vec::len);
            let worst = join_build_bytes(entering, entering);
            if pj.partitions > 1 {
                pj.partitions
            } else if budget.fits(worst) {
                1
            } else {
                build_partition_count(worst, budget.limit().unwrap_or(usize::MAX)).max(2)
            }
        } else {
            1
        };
        self.ran_partitions = Some(nparts);

        let build_map = if count > 0 && nparts == 1 {
            // The snapshot build stays serial: `join_map_visible` keys
            // on visible cells, which has no morsel decomposition yet.
            let map = match (vis, &build_rids) {
                (Vis::Snap(s), _) => right.join_map_visible(&pj.right_col, s)?,
                (Vis::All, rids) => {
                    if pj.build_workers > 1 {
                        let (map, ran) = parallel_build_map(
                            right,
                            &pj.right_col,
                            rids.as_deref(),
                            pj.build_workers,
                            self.core.cx.morsel_rows,
                            budget,
                        )?;
                        self.ran_workers = Some(ran);
                        map
                    } else {
                        match rids {
                            Some(rids) => right.join_map_filtered(&pj.right_col, rids)?,
                            None => right.join_map(&pj.right_col)?,
                        }
                    }
                }
            };
            // The actual footprint is at most the worst case `fits`
            // admitted above, so against a real limit this charge
            // cannot fail — only an injected fault trips it.
            let bytes = join_map_priced_bytes(&map);
            budget.charge(bytes)?;
            step_charged += bytes;
            Some(map)
        } else {
            None
        };
        let keys: Option<Vec<Option<&Value>>> =
            (count > 0 && nparts > 1).then(|| self.core.outer_keys(&tuples, stride, count));
        let partitioned_matches = match &keys {
            Some(keys) => {
                // nparts > 1 implied Vis::All, so the planned workers
                // apply directly (the clamp inside may still demote).
                let (matched, ran) = partitioned_join_matches(
                    right,
                    &pj.right_col,
                    build_rids.as_deref(),
                    nparts,
                    &pj.hot_keys,
                    keys,
                    budget,
                    pj.build_workers,
                )?;
                if pj.build_workers > 1 {
                    self.ran_workers = Some(ran);
                }
                Some(matched)
            }
            None => None,
        };

        let mut output = JoinOutput::new();
        for ti in 0..count {
            let t = &tuples[ti * stride..(ti + 1) * stride];
            let key = t[left_pos].get(left_slot.col_idx).unwrap_or(&NULL_VALUE);
            if join_key_excluded(key) {
                continue;
            }
            // Both variants fill buckets in ascending-RowId order: the
            // build map fills in scan order and partitioned matches
            // re-merge in rid order.
            let bucket: &[RowId] = match (&build_map, &partitioned_matches) {
                (Some(map), _) => map.get(key).map_or(&[][..], Vec::as_slice),
                (None, Some(matches)) => &matches[ti],
                (None, None) => unreachable!("count > 0 built one of the variants"),
            };
            let t_rids = if self.core.cx.needs_canonical {
                &rids[ti * stride..(ti + 1) * stride]
            } else {
                &[]
            };
            output.emit(&self.core, right_idx, key, bucket, t, t_rids)?;
        }
        budget.release(step_charged);
        Ok(output.into_batch(stride))
    }

    fn describe_node(&self) -> String {
        let pj = self.core.pj;
        let mut params = format!("{}.{}", pj.table, pj.right_col);
        params.push_str(&format!(", partitions={}", pj.partitions));
        if let Some(ran) = self.ran_partitions {
            if ran != pj.partitions {
                params.push_str(&format!(", ran_partitions={ran}"));
            }
        }
        if !pj.hot_keys.is_empty() {
            params.push_str(&format!(", hot={}", pj.hot_keys.len()));
        }
        if pj.build_workers > 1 {
            params.push_str(&format!(", workers={}", pj.build_workers));
            if let Some(ran) = self.ran_workers {
                if ran != pj.build_workers {
                    params.push_str(&format!(", ran_workers={ran}"));
                }
            }
        }
        params.push_str(&self.core.prefilter_suffix());
        format!("BuildHashJoin [{params}]")
    }

    fn estimate(&self) -> Option<f64> {
        self.core.pj.estimated_rows
    }
}

operator_impl!(BuildHashJoin, core);

/// Merge join over the build side's ordered index: outer keys and index
/// entries walk in tandem, optionally clamped to the pushdown's bounds
/// on the join key.
pub(super) struct MergeRangeJoin<'a> {
    core: JoinCore<'a>,
    child: Box<dyn Operator<'a> + 'a>,
    out: Option<Batch<'a>>,
    stats: Option<NodeStats>,
}

impl<'a> MergeRangeJoin<'a> {
    pub(super) fn new(
        cx: Rc<ExecCtx<'a>>,
        child: Box<dyn Operator<'a> + 'a>,
        right: &'a Table,
        pj: &'a PlannedJoin,
    ) -> MergeRangeJoin<'a> {
        MergeRangeJoin {
            core: JoinCore { cx, right, pj },
            child,
            out: None,
            stats: None,
        }
    }

    fn apply(&mut self, input: Batch<'a>) -> Result<Batch<'a>> {
        let Batch::Tuples {
            tuples,
            rids,
            stride,
        } = input
        else {
            unreachable!("joins run on the borrowed tuple stream")
        };
        let core = &self.core;
        let right = core.right;
        let pj = core.pj;
        let budget = core.cx.budget;
        let count = tuples.len() / stride;
        let (build_rids, mut step_charged) = core.fetch_build_rids(count)?;

        let merge_matches = if count > 0 {
            let keys = core.outer_keys(&tuples, stride, count);
            let clamp = if build_rids.is_some() {
                join_key_clamp(&pj.build_access, &pj.right_col)
            } else {
                None
            };
            let matches =
                merge_match_buckets(right, &pj.right_col, &keys, build_rids.as_deref(), clamp);
            // Only the intersected (owned) buckets are new memory;
            // borrowed buckets live in the index.
            let bytes = matches
                .iter()
                .map(|b| match b {
                    Cow::Owned(v) => v.len() * JOIN_MAP_RID_BYTES,
                    Cow::Borrowed(_) => 0,
                })
                .sum::<usize>();
            budget.charge(bytes)?;
            step_charged += bytes;
            Some(matches)
        } else {
            None
        };

        let left_slot = core.left_slot();
        let left_pos = core.left_pos();
        let right_idx = core.right_idx()?;
        let mut output = JoinOutput::new();
        for ti in 0..count {
            let t = &tuples[ti * stride..(ti + 1) * stride];
            let key = t[left_pos].get(left_slot.col_idx).unwrap_or(&NULL_VALUE);
            if join_key_excluded(key) {
                continue;
            }
            let matches = merge_matches.as_ref().expect("count > 0 staged matches");
            let t_rids = if core.cx.needs_canonical {
                &rids[ti * stride..(ti + 1) * stride]
            } else {
                &[]
            };
            output.emit(core, right_idx, key, &matches[ti], t, t_rids)?;
        }
        budget.release(step_charged);
        Ok(output.into_batch(stride))
    }

    fn describe_node(&self) -> String {
        format!(
            "MergeRangeJoin [{}.{}{}]",
            self.core.pj.table,
            self.core.pj.right_col,
            self.core.prefilter_suffix()
        )
    }

    fn estimate(&self) -> Option<f64> {
        self.core.pj.estimated_rows
    }
}

operator_impl!(MergeRangeJoin, core);
