//! Abstract syntax for the SQL subset.

use crate::predicate::CmpOp;
use crate::schema::TableSchema;
use crate::value::Value;

/// A possibly table-qualified column reference.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ColumnRef {
    pub table: Option<String>,
    pub column: String,
}

impl ColumnRef {
    pub fn unqualified(column: impl Into<String>) -> ColumnRef {
        ColumnRef {
            table: None,
            column: column.into(),
        }
    }

    pub fn qualified(table: impl Into<String>, column: impl Into<String>) -> ColumnRef {
        ColumnRef {
            table: Some(table.into()),
            column: column.into(),
        }
    }
}

impl std::fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.table {
            Some(t) => write!(f, "{t}.{}", self.column),
            None => write!(f, "{}", self.column),
        }
    }
}

/// Boolean expression in a `WHERE` clause.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlExpr {
    Cmp {
        column: ColumnRef,
        op: CmpOp,
        value: Value,
    },
    Like {
        column: ColumnRef,
        pattern: String,
    },
    IsNull {
        column: ColumnRef,
        negated: bool,
    },
    And(Box<SqlExpr>, Box<SqlExpr>),
    Or(Box<SqlExpr>, Box<SqlExpr>),
    Not(Box<SqlExpr>),
}

/// `JOIN <table> ON <left> = <right>`.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinClause {
    pub table: String,
    pub left: ColumnRef,
    pub right: ColumnRef,
}

/// Aggregate functions of the SQL subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    Count,
    Sum,
    Avg,
    Min,
    Max,
}

impl AggFunc {
    /// SQL keyword (lowercase).
    pub fn keyword(self) -> &'static str {
        match self {
            AggFunc::Count => "count",
            AggFunc::Sum => "sum",
            AggFunc::Avg => "avg",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
        }
    }

    /// Parse a function keyword.
    pub fn from_keyword(kw: &str) -> Option<AggFunc> {
        match kw.to_ascii_lowercase().as_str() {
            "count" => Some(AggFunc::Count),
            "sum" => Some(AggFunc::Sum),
            "avg" => Some(AggFunc::Avg),
            "min" => Some(AggFunc::Min),
            "max" => Some(AggFunc::Max),
            _ => None,
        }
    }
}

/// One item of a projection list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// A plain column reference.
    Column(ColumnRef),
    /// `FUNC(column)` or `COUNT(*)` (arg `None`).
    Aggregate {
        func: AggFunc,
        arg: Option<ColumnRef>,
    },
}

/// Projection list.
#[derive(Debug, Clone, PartialEq)]
pub enum Projection {
    Star,
    Items(Vec<SelectItem>),
}

impl Projection {
    /// Convenience constructor for plain column projections.
    pub fn columns(cols: Vec<ColumnRef>) -> Projection {
        Projection::Items(cols.into_iter().map(SelectItem::Column).collect())
    }

    /// Whether any item is an aggregate.
    pub fn has_aggregates(&self) -> bool {
        match self {
            Projection::Star => false,
            Projection::Items(items) => items
                .iter()
                .any(|i| matches!(i, SelectItem::Aggregate { .. })),
        }
    }
}

/// A parsed `SELECT`.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    pub table: String,
    pub joins: Vec<JoinClause>,
    pub projection: Projection,
    pub where_clause: Option<SqlExpr>,
    pub group_by: Vec<ColumnRef>,
    pub order_by: Option<(ColumnRef, bool)>, // (column, descending)
    pub limit: Option<usize>,
}

/// Any statement of the subset.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    CreateTable(TableSchema),
    Insert {
        table: String,
        columns: Option<Vec<String>>,
        rows: Vec<Vec<Value>>,
    },
    Select(SelectStmt),
    /// `EXPLAIN [ANALYZE] SELECT ...` — render the lowered operator
    /// tree; `ANALYZE` also executes it and reports actual row counts.
    Explain {
        analyze: bool,
        select: SelectStmt,
    },
    Update {
        table: String,
        set: Vec<(String, Value)>,
        where_clause: Option<SqlExpr>,
    },
    Delete {
        table: String,
        where_clause: Option<SqlExpr>,
    },
    /// `BEGIN [TRANSACTION | WORK]` — open an explicit transaction.
    /// Only meaningful through a [`Session`](crate::sql::Session);
    /// the sessionless `execute` rejects it.
    Begin,
    /// `COMMIT [TRANSACTION | WORK]` — publish the open transaction.
    Commit,
    /// `ROLLBACK [TRANSACTION | WORK]` — discard the open transaction.
    Rollback,
    /// `CHECKPOINT` — snapshot the committed state to disk and truncate
    /// the change log. Only meaningful on a durable database; refused
    /// while any transaction is active.
    Checkpoint,
}
