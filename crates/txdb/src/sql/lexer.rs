//! SQL tokenizer.

use crate::error::{Result, TxdbError};

/// A lexical token. Keywords are not distinguished here — the parser
/// matches identifiers case-insensitively.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword.
    Ident(String),
    /// Numeric literal (integer or float), unparsed.
    Number(String),
    /// Single-quoted string literal with `''` unescaped.
    Str(String),
    /// Punctuation / operator.
    Punct(&'static str),
}

impl Token {
    /// If this token is an identifier, its text.
    pub fn ident(&self) -> Option<&str> {
        match self {
            Token::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// Whether this token is the given keyword (case-insensitive).
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }

    /// Whether this token is the given punctuation.
    pub fn is_punct(&self, p: &str) -> bool {
        matches!(self, Token::Punct(q) if *q == p)
    }
}

/// Tokenize SQL text. Supports `--` line comments.
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    let mut tokens = Vec::new();
    let bytes = input.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '-' if bytes.get(i + 1) == Some(&b'-') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '\'' => {
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= bytes.len() {
                        return Err(TxdbError::Parse("unterminated string literal".into()));
                    }
                    if bytes[i] == b'\'' {
                        if bytes.get(i + 1) == Some(&b'\'') {
                            s.push('\'');
                            i += 2;
                        } else {
                            i += 1;
                            break;
                        }
                    } else {
                        // Consume one UTF-8 scalar.
                        let rest = &input[i..];
                        let ch = rest.chars().next().expect("in-bounds");
                        s.push(ch);
                        i += ch.len_utf8();
                    }
                }
                tokens.push(Token::Str(s));
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_digit()
                        || bytes[i] == b'.'
                        || bytes[i] == b'e'
                        || bytes[i] == b'E'
                        || ((bytes[i] == b'+' || bytes[i] == b'-')
                            && matches!(bytes.get(i.wrapping_sub(1)), Some(b'e') | Some(b'E'))))
                {
                    i += 1;
                }
                tokens.push(Token::Number(input[start..i].to_string()));
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() {
                    let ch = input[i..].chars().next().expect("in-bounds");
                    if ch.is_alphanumeric() || ch == '_' {
                        i += ch.len_utf8();
                    } else {
                        break;
                    }
                }
                tokens.push(Token::Ident(input[start..i].to_string()));
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Punct("<="));
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'>') {
                    tokens.push(Token::Punct("<>"));
                    i += 2;
                } else {
                    tokens.push(Token::Punct("<"));
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Punct(">="));
                    i += 2;
                } else {
                    tokens.push(Token::Punct(">"));
                    i += 1;
                }
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Punct("<>"));
                    i += 2;
                } else {
                    return Err(TxdbError::Parse("unexpected `!`".into()));
                }
            }
            '=' => {
                tokens.push(Token::Punct("="));
                i += 1;
            }
            '(' | ')' | ',' | '.' | '*' | ';' => {
                tokens.push(Token::Punct(match c {
                    '(' => "(",
                    ')' => ")",
                    ',' => ",",
                    '.' => ".",
                    '*' => "*",
                    ';' => ";",
                    _ => unreachable!(),
                }));
                i += 1;
            }
            '-' => {
                tokens.push(Token::Punct("-"));
                i += 1;
            }
            other => {
                return Err(TxdbError::Parse(format!("unexpected character `{other}`")));
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_basic_statement() {
        let toks = tokenize("SELECT title FROM movie WHERE rating >= 8.5;").unwrap();
        assert!(toks[0].is_kw("select"));
        assert!(toks[4].is_kw("WHERE"));
        assert!(toks.iter().any(|t| t.is_punct(">=")));
        assert!(toks
            .iter()
            .any(|t| matches!(t, Token::Number(n) if n == "8.5")));
    }

    #[test]
    fn string_escapes() {
        let toks = tokenize("'O''Hara'").unwrap();
        assert_eq!(toks, vec![Token::Str("O'Hara".into())]);
    }

    #[test]
    fn unterminated_string_is_error() {
        assert!(tokenize("'abc").is_err());
    }

    #[test]
    fn comments_skipped() {
        let toks = tokenize("SELECT -- the projection\n * FROM t").unwrap();
        assert_eq!(toks.len(), 4);
    }

    #[test]
    fn neq_variants() {
        assert_eq!(tokenize("a <> b").unwrap()[1], Token::Punct("<>"));
        assert_eq!(tokenize("a != b").unwrap()[1], Token::Punct("<>"));
    }

    #[test]
    fn unicode_in_strings_and_idents() {
        let toks = tokenize("INSERT INTO movie VALUES ('Amélie')").unwrap();
        assert!(toks
            .iter()
            .any(|t| matches!(t, Token::Str(s) if s == "Amélie")));
    }

    #[test]
    fn rejects_garbage() {
        assert!(tokenize("SELECT @ FROM t").is_err());
    }
}
