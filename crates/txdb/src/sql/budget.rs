//! Execution-memory budget: the resource guard behind
//! [`PlanOptions::memory_budget`](super::plan::PlanOptions::memory_budget).
//!
//! Every materializing structure in the executor — hash-join build maps,
//! partition RowId lists, build-side pushdown probe sets, merge-join
//! match buffers, GROUP BY maps, ORDER BY key arrays and top-k heaps —
//! charges an estimated byte footprint against one [`ExecBudget`] before
//! (or, for small post-hoc accounted buffers, right after) it is
//! populated. The budget tracks *auxiliary* memory: buffers whose size is
//! already implied by the query's own result stream (the joined tuple
//! vector, the projected rows) are not charged, since every executor —
//! including the naive reference — materializes those identically.
//!
//! Degradation order on pressure:
//!
//! 1. A hash-join build whose priced footprint exceeds the build share of
//!    the budget switches to the **partitioned** path (plan-time from the
//!    cardinality estimate, exec-time from the actual row count): the
//!    build side is hash-partitioned and only one partition's map is
//!    resident at a time, with plan-identified hot keys pinned in a small
//!    dedicated map. One extra pass over the build side, identical
//!    results.
//! 2. Anything else that overruns — a partition map that still does not
//!    fit, a GROUP BY map, a sort-key array — fails the whole query
//!    atomically with [`TxdbError::ResourceExhausted`]. The executor
//!    never returns partial output: the error propagates before any
//!    `ResultSet` is constructed.
//!
//! The byte constants are deliberately coarse (a `RowId` list entry, a
//! hash-map entry with its bucket header): the budget bounds growth and
//! triggers degradation; it is not an allocator.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use crate::error::{Result, TxdbError};

/// Estimated bytes per `RowId` held in a bucket or partition list.
pub const JOIN_MAP_RID_BYTES: usize = 8;

/// Estimated bytes per distinct key entry of a hash build map (key,
/// bucket header, table slot overhead).
pub const JOIN_MAP_ENTRY_BYTES: usize = 48;

/// Estimated bytes per group of a GROUP BY map (key tuple header plus
/// member-list header).
pub const GROUP_ENTRY_BYTES: usize = 48;

/// Estimated bytes per tuple tracked by an ORDER BY sort (key pointer
/// plus permutation index) or a bounded top-k heap entry.
pub const SORT_KEY_BYTES: usize = 16;

/// The fraction of the budget (as a divisor) a single hash build map may
/// claim before it partitions. Deliberately conservative: the build map
/// competes with probe sets, sort keys and group maps for the same
/// budget, and it is the only structure with a graceful fallback —
/// degrading early costs one extra pass over the build side, while
/// overrunning late fails the query.
pub const BUILD_BUDGET_DENOM: usize = 64;

/// Upper bound on build-side partitions: past this, per-partition
/// scheduling overhead dominates and a budget this tight should fail
/// loudly instead.
pub const MAX_PARTITIONS: usize = 64;

/// Estimated bytes of an in-place hash build over `rows` rows with
/// `distinct` distinct keys: bucket storage plus map entries.
pub fn join_build_bytes(rows: usize, distinct: usize) -> usize {
    rows * JOIN_MAP_RID_BYTES + distinct.min(rows) * JOIN_MAP_ENTRY_BYTES
}

/// Number of build partitions for a `bytes`-sized build under `budget`:
/// 1 when the build share absorbs it in place, otherwise enough
/// partitions that each resident map stays within the share, capped at
/// [`MAX_PARTITIONS`].
pub fn build_partition_count(bytes: usize, budget: usize) -> usize {
    let share = (budget / BUILD_BUDGET_DENOM).max(1);
    if bytes <= share {
        1
    } else {
        bytes.div_ceil(share).clamp(2, MAX_PARTITIONS)
    }
}

/// Byte-accounting guard threaded through one `SELECT` execution.
///
/// Charges accumulate against an optional limit; [`ExecBudget::release`]
/// returns bytes when a transient structure (a per-partition map, a
/// join step's probe set) is dropped, so the tracked figure follows the
/// live footprint and [`ExecBudget::peak`] records its high-water mark.
/// Interior mutability keeps the executor's borrow structure unchanged —
/// execution is single-threaded.
#[derive(Debug)]
pub struct ExecBudget {
    limit: Option<usize>,
    used: Cell<usize>,
    peak: Cell<usize>,
    /// Fault injection: successful charges remaining before every
    /// subsequent charge fails (sticky). `None` disables injection.
    fail_after: Cell<Option<usize>>,
}

impl ExecBudget {
    /// No limit: charges are tracked (peak stays meaningful) but never
    /// fail.
    pub fn unlimited() -> ExecBudget {
        ExecBudget {
            limit: None,
            used: Cell::new(0),
            peak: Cell::new(0),
            fail_after: Cell::new(None),
        }
    }

    /// Budget of `bytes`: a charge that would push the tracked total
    /// past it fails with [`TxdbError::ResourceExhausted`].
    pub fn with_limit(bytes: usize) -> ExecBudget {
        ExecBudget {
            limit: Some(bytes),
            ..ExecBudget::unlimited()
        }
    }

    /// The guard for a plan's options: limited when
    /// `memory_budget` is set, unlimited otherwise.
    pub fn from_options(opts: &super::plan::PlanOptions) -> ExecBudget {
        match opts.memory_budget {
            Some(b) => ExecBudget::with_limit(b),
            None => ExecBudget::unlimited(),
        }
    }

    /// Fault injector: admit `n` charges, then fail every subsequent one
    /// — forces exhaustion mid-join so tests can assert the failure is
    /// atomic (no partial output ever escapes).
    #[cfg(test)]
    pub fn failing_after(n: usize) -> ExecBudget {
        let b = ExecBudget::unlimited();
        b.fail_after.set(Some(n));
        b
    }

    /// Track `bytes` of newly materialized structure. Fails — without
    /// recording the charge — when the total would exceed the limit.
    pub fn charge(&self, bytes: usize) -> Result<()> {
        if let Some(remaining) = self.fail_after.get() {
            if remaining == 0 {
                return Err(TxdbError::ResourceExhausted {
                    budget: self.limit.unwrap_or(self.used.get()),
                    requested: self.used.get() + bytes,
                });
            }
            self.fail_after.set(Some(remaining - 1));
        }
        let new = self.used.get().saturating_add(bytes);
        if let Some(limit) = self.limit {
            if new > limit {
                return Err(TxdbError::ResourceExhausted {
                    budget: limit,
                    requested: new,
                });
            }
        }
        self.used.set(new);
        self.peak.set(self.peak.get().max(new));
        Ok(())
    }

    /// Whether `bytes` more would still fit — the executor's degradation
    /// probe, checked before committing to an in-place build.
    pub fn fits(&self, bytes: usize) -> bool {
        match self.limit {
            Some(limit) => self.used.get().saturating_add(bytes) <= limit,
            None => true,
        }
    }

    /// Return `bytes` after a transient structure is dropped.
    pub fn release(&self, bytes: usize) {
        self.used.set(self.used.get().saturating_sub(bytes));
    }

    /// Currently tracked bytes.
    pub fn used(&self) -> usize {
        self.used.get()
    }

    /// High-water mark of tracked bytes.
    pub fn peak(&self) -> usize {
        self.peak.get()
    }

    /// Begin a nested peak observation (one operator's `open`): rewinds
    /// the live high-water mark to the currently tracked bytes and
    /// returns the global peak so far for [`ExecBudget::end_scope`] to
    /// restore. Scopes nest: each operator observes its own high-water
    /// mark while the global peak, restored as the running maximum,
    /// stays exact.
    pub fn begin_scope(&self) -> usize {
        let saved = self.peak.get();
        self.peak.set(self.used.get());
        saved
    }

    /// End a nested peak observation: returns the bytes the scope peaked
    /// at and restores the global high-water mark to the maximum of the
    /// saved value and the scoped peak.
    pub fn end_scope(&self, saved: usize) -> usize {
        let scoped = self.peak.get();
        self.peak.set(saved.max(scoped));
        scoped
    }

    /// The configured limit, if any.
    pub fn limit(&self) -> Option<usize> {
        self.limit
    }

    /// Open a thread-safe lease over this budget for one parallel
    /// region: workers charge the returned [`SharedBudget`]'s atomics
    /// concurrently, and [`ExecBudget::absorb`] reconciles the final
    /// state (tracked bytes, the region's high-water mark, consumed
    /// fault-injector admissions) back into the serial account when the
    /// region's workers have joined. At most one lease is live at a
    /// time — parallel regions run one operator at a time, on the
    /// driving thread.
    pub fn lease(&self) -> SharedBudget {
        SharedBudget {
            limit: self.limit,
            used: AtomicUsize::new(self.used.get()),
            peak: AtomicUsize::new(self.used.get()),
            admits: self.fail_after.get().map(AtomicUsize::new),
            exhausted: AtomicBool::new(false),
        }
    }

    /// Fold a parallel region's lease back into the serial account: the
    /// tracked total becomes the lease's (base + net worker charges),
    /// the global peak takes the region's high-water mark, and the
    /// fault injector keeps only the admissions the workers left
    /// unconsumed — so a sweep that trips inside a worker stays sticky
    /// exactly like the serial injector.
    pub fn absorb(&self, lease: &SharedBudget) {
        self.used.set(lease.used.load(Ordering::Relaxed));
        self.peak
            .set(self.peak.get().max(lease.peak.load(Ordering::Relaxed)));
        if let Some(admits) = &lease.admits {
            let remaining = if lease.exhausted.load(Ordering::Relaxed) {
                0
            } else {
                admits.load(Ordering::Relaxed)
            };
            self.fail_after.set(Some(remaining));
        }
    }
}

/// The atomic mirror of an [`ExecBudget`] that one parallel region's
/// workers charge concurrently (see [`ExecBudget::lease`]). Semantics
/// match the serial guard: a charge that would cross the limit — or
/// that the fault injector refuses — fails without being recorded, and
/// exhaustion is sticky, so sibling workers racing the failing one
/// cannot smuggle further charges through while the region cancels.
#[derive(Debug)]
pub struct SharedBudget {
    limit: Option<usize>,
    used: AtomicUsize,
    peak: AtomicUsize,
    /// Remaining fault-injector admissions (`None` disables injection).
    admits: Option<AtomicUsize>,
    /// Sticky exhaustion latch: set by the first failing charge.
    exhausted: AtomicBool,
}

impl SharedBudget {
    /// Track `bytes` from a worker. Fails — without recording — when
    /// the injector is out of admissions, a sibling already exhausted
    /// the region, or the total would cross the limit.
    pub fn charge(&self, bytes: usize) -> Result<()> {
        let fail = |requested: usize| TxdbError::ResourceExhausted {
            budget: self.limit.unwrap_or(self.used.load(Ordering::Relaxed)),
            requested,
        };
        if self.exhausted.load(Ordering::Relaxed) {
            return Err(fail(
                self.used.load(Ordering::Relaxed).saturating_add(bytes),
            ));
        }
        if let Some(admits) = &self.admits {
            // Admissions decrement toward a floor of zero; a worker
            // that finds none left latches exhaustion for its siblings.
            let granted = admits
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
                .is_ok();
            if !granted {
                self.exhausted.store(true, Ordering::Relaxed);
                return Err(fail(
                    self.used.load(Ordering::Relaxed).saturating_add(bytes),
                ));
            }
        }
        let new = self
            .used
            .fetch_add(bytes, Ordering::Relaxed)
            .saturating_add(bytes);
        if let Some(limit) = self.limit {
            if new > limit {
                self.used.fetch_sub(bytes, Ordering::Relaxed);
                self.exhausted.store(true, Ordering::Relaxed);
                return Err(fail(new));
            }
        }
        self.peak.fetch_max(new, Ordering::Relaxed);
        Ok(())
    }

    /// Return `bytes` after a worker's transient structure is dropped.
    pub fn release(&self, bytes: usize) {
        self.used.fetch_sub(bytes, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_release_and_peak_track_the_live_footprint() {
        let b = ExecBudget::with_limit(100);
        b.charge(60).unwrap();
        b.charge(30).unwrap();
        assert_eq!(b.used(), 90);
        b.release(50);
        assert_eq!(b.used(), 40);
        b.charge(40).unwrap();
        assert_eq!(b.peak(), 90);
        assert_eq!(b.peak(), 90);
    }

    #[test]
    fn overrun_fails_without_recording_the_charge() {
        let b = ExecBudget::with_limit(100);
        b.charge(80).unwrap();
        let err = b.charge(30).unwrap_err();
        assert_eq!(
            err,
            TxdbError::ResourceExhausted {
                budget: 100,
                requested: 110
            }
        );
        // The failed charge left the account untouched: a smaller one
        // still fits.
        assert_eq!(b.used(), 80);
        b.charge(20).unwrap();
    }

    #[test]
    fn unlimited_tracks_but_never_fails() {
        let b = ExecBudget::unlimited();
        b.charge(usize::MAX / 2).unwrap();
        b.charge(usize::MAX / 2).unwrap();
        assert!(b.fits(usize::MAX));
    }

    #[test]
    fn failing_after_is_sticky() {
        let b = ExecBudget::failing_after(2);
        b.charge(1).unwrap();
        b.charge(1).unwrap();
        assert!(b.charge(1).is_err());
        assert!(b.charge(0).is_err(), "injection must not reset");
    }

    #[test]
    fn peak_scopes_nest_and_preserve_the_global_high_water_mark() {
        let b = ExecBudget::unlimited();
        b.charge(100).unwrap();
        b.release(100); // global peak now 100, used 0
        let outer = b.begin_scope();
        b.charge(10).unwrap();
        let inner = b.begin_scope();
        b.charge(30).unwrap();
        b.release(30);
        assert_eq!(b.end_scope(inner), 40, "inner scope saw its own peak");
        b.release(10);
        assert_eq!(b.end_scope(outer), 40, "outer scope includes the inner");
        assert_eq!(b.peak(), 100, "global high-water mark survives scoping");
    }

    #[test]
    fn a_lease_reconciles_usage_peak_and_injector_state() {
        let b = ExecBudget::with_limit(100);
        b.charge(10).unwrap();
        let lease = b.lease();
        lease.charge(70).unwrap();
        lease.release(40);
        b.absorb(&lease);
        assert_eq!(b.used(), 40, "base + net worker charges");
        assert_eq!(b.peak(), 80, "region high-water mark absorbed");
        // Over-limit charges fail in the lease exactly like the serial
        // guard, stickily.
        let lease = b.lease();
        assert!(lease.charge(100).is_err());
        assert!(lease.charge(0).is_err(), "exhaustion latches for siblings");

        let b = ExecBudget::failing_after(3);
        b.charge(0).unwrap();
        let lease = b.lease();
        lease.charge(1).unwrap();
        b.absorb(&lease);
        assert!(b.charge(2).is_ok(), "one admission left after the region");
        assert!(
            b.charge(0).is_err(),
            "injector stayed sticky through the lease"
        );
    }

    #[test]
    fn partition_count_scales_with_pressure() {
        // Fits the share in place.
        assert_eq!(build_partition_count(1000, 64 * 1024), 1);
        // Over the share: enough partitions that each fits.
        let p = build_partition_count(10_000, 64 * 1024);
        assert!((2..=MAX_PARTITIONS).contains(&p));
        assert!(10_000usize.div_ceil(p) <= (64 * 1024) / BUILD_BUDGET_DENOM);
        // Absurd pressure clamps at the cap.
        assert_eq!(build_partition_count(usize::MAX / 2, 1024), MAX_PARTITIONS);
    }
}
