//! Column statistics: distinct counts, most-common values, histograms,
//! entropy and selectivity estimates.
//!
//! These are the "database statistics (e.g., selectivities)" the paper's
//! data-aware policy consumes. They are computed from live data (the engine
//! is in-memory, so a full pass is cheap at demo scale) and cached by the
//! policy layer keyed on the table version.

use std::collections::HashMap;

use crate::error::Result;
use crate::table::Table;
use crate::value::{DataType, Value};

/// Shannon entropy (bits) of a discrete distribution given by counts.
/// Zero-count entries are ignored; an empty or single-class distribution
/// has entropy 0.
pub fn entropy_of_counts<I: IntoIterator<Item = usize>>(counts: I) -> f64 {
    let counts: Vec<usize> = counts.into_iter().filter(|&c| c > 0).collect();
    let total: usize = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let total_f = total as f64;
    counts
        .iter()
        .map(|&c| {
            let p = c as f64 / total_f;
            -p * p.log2()
        })
        .sum()
}

/// An equi-width histogram over numeric values.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    pub min: f64,
    pub max: f64,
    pub buckets: Vec<usize>,
}

impl Histogram {
    /// Build with `n_buckets` equal-width buckets. Returns `None` for an
    /// empty input.
    pub fn build(values: &[f64], n_buckets: usize) -> Option<Histogram> {
        if values.is_empty() || n_buckets == 0 {
            return None;
        }
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mut buckets = vec![0usize; n_buckets];
        let width = (max - min) / n_buckets as f64;
        for &v in values {
            let idx = if width == 0.0 {
                0
            } else {
                (((v - min) / width) as usize).min(n_buckets - 1)
            };
            buckets[idx] += 1;
        }
        Some(Histogram { min, max, buckets })
    }

    /// Estimated fraction of values in `[lo, hi]` assuming uniform spread
    /// within each bucket.
    pub fn range_selectivity(&self, lo: f64, hi: f64) -> f64 {
        let total: usize = self.buckets.iter().sum();
        if total == 0 || hi < lo {
            return 0.0;
        }
        if self.max == self.min {
            return if lo <= self.min && self.min <= hi {
                1.0
            } else {
                0.0
            };
        }
        let width = (self.max - self.min) / self.buckets.len() as f64;
        let mut hit = 0.0;
        for (i, &c) in self.buckets.iter().enumerate() {
            let b_lo = self.min + i as f64 * width;
            let b_hi = b_lo + width;
            let overlap = (hi.min(b_hi) - lo.max(b_lo)).max(0.0);
            if overlap > 0.0 {
                hit += c as f64 * (overlap / width).min(1.0);
            }
        }
        (hit / total as f64).clamp(0.0, 1.0)
    }
}

/// Statistics of one column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Number of non-null values.
    pub count: usize,
    /// Number of nulls.
    pub null_count: usize,
    /// Number of distinct non-null values.
    pub distinct: usize,
    /// Shannon entropy (bits) of the value distribution.
    pub entropy: f64,
    /// Most common values with their counts, descending, capped.
    pub most_common: Vec<(Value, usize)>,
    /// Histogram for numeric/date columns.
    pub histogram: Option<Histogram>,
    /// Minimum / maximum (comparable types only).
    pub min: Option<Value>,
    pub max: Option<Value>,
}

/// Cap on the most-common-values list.
pub const MCV_LIMIT: usize = 16;
/// Default histogram bucket count.
pub const HISTOGRAM_BUCKETS: usize = 32;

impl ColumnStats {
    /// Compute statistics from an iterator of values.
    pub fn compute<'a, I: IntoIterator<Item = &'a Value>>(ty: DataType, values: I) -> ColumnStats {
        let mut counts: HashMap<&Value, usize> = HashMap::new();
        let mut null_count = 0usize;
        let mut numeric: Vec<f64> = Vec::new();
        let mut min: Option<&Value> = None;
        let mut max: Option<&Value> = None;
        for v in values {
            if v.is_null() {
                null_count += 1;
                continue;
            }
            *counts.entry(v).or_insert(0) += 1;
            if let Some(x) = numeric_key(ty, v) {
                numeric.push(x);
            }
            min = Some(match min {
                Some(m) if m.partial_cmp(v).is_none_or(|o| o.is_le()) => m,
                _ => v,
            });
            max = Some(match max {
                Some(m) if m.partial_cmp(v).is_none_or(|o| o.is_ge()) => m,
                _ => v,
            });
        }
        let count: usize = counts.values().sum();
        let entropy = entropy_of_counts(counts.values().copied());
        let mut mcv: Vec<(Value, usize)> = counts.iter().map(|(v, &c)| ((*v).clone(), c)).collect();
        // Tiebreak with the OrdKey total order: `Value::partial_cmp`
        // collapses NaN-vs-number to Equal, which is not a consistent
        // total order and makes the sort panic once NaN values coexist
        // with equally-frequent numbers.
        mcv.sort_by(|a, b| {
            b.1.cmp(&a.1)
                .then_with(|| crate::index::OrdKey::cmp_values(&a.0, &b.0))
        });
        let distinct = mcv.len();
        mcv.truncate(MCV_LIMIT);
        let histogram = Histogram::build(&numeric, HISTOGRAM_BUCKETS);
        ColumnStats {
            count,
            null_count,
            distinct,
            entropy,
            most_common: mcv,
            histogram,
            min: min.cloned(),
            max: max.cloned(),
        }
    }

    /// Estimated selectivity of `column = value`: exact from the MCV list
    /// when the value is tracked, otherwise a uniform estimate over the
    /// remaining distinct values, clamped (Postgres-style) to the least
    /// common tracked frequency — a value *outside* the MCV list cannot
    /// plausibly be more frequent than the rarest value *inside* it.
    ///
    /// The fraction is of **non-null** values; planner-side consumers
    /// scale by [`ColumnStats::fill_rate`] before applying it to full row
    /// counts.
    pub fn eq_selectivity(&self, value: &Value) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        if let Some((_, c)) = self.most_common.iter().find(|(v, _)| v == value) {
            return *c as f64 / self.count as f64;
        }
        let mcv_total: usize = self.most_common.iter().map(|(_, c)| c).sum();
        let rest_distinct = self.distinct.saturating_sub(self.most_common.len());
        if rest_distinct == 0 {
            // Value unseen: treat as very selective.
            return 1.0 / (self.count as f64 + 1.0);
        }
        let rest = self.count.saturating_sub(mcv_total) as f64;
        // With exact full-pass stats the average non-MCV frequency cannot
        // exceed the least MCV frequency (the MCV list holds the top
        // counts), so the clamp only binds for hand-built or sampled
        // statistics — but those are exactly the inputs a robust
        // estimator must not invert the plausibility order on.
        let least_mcv = self
            .most_common
            .last()
            .map_or(f64::INFINITY, |(_, c)| *c as f64 / self.count as f64);
        ((rest / rest_distinct as f64) / self.count as f64).min(least_mcv)
    }

    /// Normalized entropy in `[0,1]`: entropy divided by `log2(count)`.
    /// 1 means every value unique; 0 means a single value dominates.
    pub fn normalized_entropy(&self) -> f64 {
        if self.count <= 1 {
            return 0.0;
        }
        (self.entropy / (self.count as f64).log2()).clamp(0.0, 1.0)
    }

    /// Fraction of non-null values.
    pub fn fill_rate(&self) -> f64 {
        let total = self.count + self.null_count;
        if total == 0 {
            0.0
        } else {
            self.count as f64 / total as f64
        }
    }

    /// Fraction of NULL values — the estimated selectivity of
    /// `column IS NULL` (and the complement of `IS NOT NULL`).
    pub fn null_fraction(&self) -> f64 {
        let total = self.count + self.null_count;
        if total == 0 {
            0.0
        } else {
            self.null_count as f64 / total as f64
        }
    }
}

fn numeric_key(ty: DataType, v: &Value) -> Option<f64> {
    match (ty, v) {
        (DataType::Int | DataType::Float, _) => v.as_float(),
        (DataType::Date, Value::Date(d)) => Some(d.day_number() as f64),
        _ => None,
    }
}

/// Cap on the joint most-common-pairs list of a [`JointStats`].
pub const JOINT_MCV_LIMIT: usize = 64;
/// Cap on the number of column pairs per table that get joint statistics
/// (pairs are considered in schema order; wide tables keep the stats pass
/// bounded).
pub const JOINT_PAIR_LIMIT: usize = 8;

/// Joint (2-D) statistics of one column pair: the observed co-occurrence
/// frequencies of `(a, b)` value pairs, capped at [`JOINT_MCV_LIMIT`].
///
/// Only *low-distinct* pairs are tracked (both columns with
/// `2 ..= `[`MCV_LIMIT`]` distinct values`), so the pair space is small
/// and the list is usually complete. The planner uses these to price
/// `a = x AND b = y` from the observed joint frequency instead of the
/// independence product — the classic failure mode of multiplying
/// per-conjunct selectivities on correlated columns (city ↔ country).
#[derive(Debug, Clone, PartialEq)]
pub struct JointStats {
    /// First column of the pair (earlier in schema order).
    pub col_a: String,
    /// Second column of the pair.
    pub col_b: String,
    /// Total table rows at computation time (the denominator of
    /// [`JointStats::pair_selectivity`] — an equality pair never matches
    /// a NULL on either side, so the honest fraction is of *all* rows).
    pub rows: usize,
    /// Rows where both columns are non-null.
    pub count: usize,
    /// Distinct `(a, b)` pairs among those rows.
    pub distinct: usize,
    /// Most common value pairs with their counts, descending, capped at
    /// [`JOINT_MCV_LIMIT`].
    pub most_common: Vec<(Value, Value, usize)>,
}

impl JointStats {
    /// Estimated fraction of **all** table rows satisfying
    /// `col_a = a AND col_b = b`: exact when the pair is tracked; when the
    /// pair list is complete but the pair absent, the combination never
    /// co-occurs in the data and the estimate is near zero; for a
    /// truncated list, a uniform estimate over the untracked pairs,
    /// clamped to the least common tracked pair.
    pub fn pair_selectivity(&self, a: &Value, b: &Value) -> f64 {
        if self.rows == 0 {
            return 0.0;
        }
        let rows = self.rows as f64;
        if let Some((_, _, c)) = self.most_common.iter().find(|(x, y, _)| x == a && y == b) {
            return *c as f64 / rows;
        }
        if self.most_common.len() == self.distinct {
            return 1.0 / (rows + 1.0);
        }
        let tracked: usize = self.most_common.iter().map(|(_, _, c)| c).sum();
        let rest = self.count.saturating_sub(tracked) as f64;
        let rest_distinct = self.distinct.saturating_sub(self.most_common.len()) as f64;
        let least = self
            .most_common
            .last()
            .map_or(f64::INFINITY, |(_, _, c)| *c as f64 / rows);
        ((rest / rest_distinct.max(1.0)) / rows).min(least)
    }

    /// Assemble from accumulated co-occurrence counts (see the single
    /// shared scan in [`TableStats::compute`]).
    fn from_counts(
        col_a: &str,
        col_b: &str,
        rows: usize,
        count: usize,
        counts: HashMap<(&Value, &Value), usize>,
    ) -> JointStats {
        let distinct = counts.len();
        let mut mcv: Vec<(Value, Value, usize)> = counts
            .into_iter()
            .map(|((a, b), c)| (a.clone(), b.clone(), c))
            .collect();
        // Same OrdKey tiebreak as the 1-D MCV sort: `Value::partial_cmp`
        // is not a total order once NaN coexists with equal-count values.
        mcv.sort_by(|x, y| {
            y.2.cmp(&x.2)
                .then_with(|| crate::index::OrdKey::cmp_values(&x.0, &y.0))
                .then_with(|| crate::index::OrdKey::cmp_values(&x.1, &y.1))
        });
        mcv.truncate(JOINT_MCV_LIMIT);
        JointStats {
            col_a: col_a.to_string(),
            col_b: col_b.to_string(),
            rows,
            count,
            distinct,
            most_common: mcv,
        }
    }
}

/// Statistics for every column of a table, plus the table version they
/// were computed at.
#[derive(Debug, Clone)]
pub struct TableStats {
    pub table: String,
    pub row_count: usize,
    pub version: u64,
    pub columns: Vec<(String, ColumnStats)>,
    /// Joint statistics for low-distinct column pairs (see
    /// [`JointStats`]); at most [`JOINT_PAIR_LIMIT`] pairs, in schema
    /// order.
    pub joint: Vec<JointStats>,
}

impl TableStats {
    /// Full statistics pass over a table, including joint statistics for
    /// low-distinct column pairs (both sides with `2..=`[`MCV_LIMIT`]
    /// distinct values, at most [`JOINT_PAIR_LIMIT`] pairs in schema
    /// order — all pairs accumulated in one extra shared scan).
    pub fn compute(table: &Table) -> TableStats {
        let schema = table.schema();
        let mut columns = Vec::with_capacity(schema.arity());
        for (i, col) in schema.columns().iter().enumerate() {
            let values: Vec<&Value> = table
                .scan()
                .map(|(_, row)| row.get(i).unwrap_or(&Value::Null))
                .collect();
            columns.push((col.name.clone(), ColumnStats::compute(col.ty, values)));
        }
        let low_distinct: Vec<usize> = (0..columns.len())
            .filter(|&i| (2..=MCV_LIMIT).contains(&columns[i].1.distinct))
            .collect();
        let mut pairs: Vec<(usize, usize)> = Vec::new();
        'pairs: for (pi, &i) in low_distinct.iter().enumerate() {
            for &j in &low_distinct[pi + 1..] {
                if pairs.len() >= JOINT_PAIR_LIMIT {
                    break 'pairs;
                }
                pairs.push((i, j));
            }
        }
        // One shared co-occurrence scan for every tracked pair:
        // (non-null-pair count, co-occurrence counts) per pair.
        type PairAcc<'v> = (usize, HashMap<(&'v Value, &'v Value), usize>);
        let mut acc: Vec<PairAcc> = pairs.iter().map(|_| (0, HashMap::new())).collect();
        if !pairs.is_empty() {
            for (_, row) in table.scan() {
                for (k, &(i, j)) in pairs.iter().enumerate() {
                    let (a, b) = (
                        row.get(i).unwrap_or(&Value::Null),
                        row.get(j).unwrap_or(&Value::Null),
                    );
                    if a.is_null() || b.is_null() {
                        continue;
                    }
                    let (count, counts) = &mut acc[k];
                    *count += 1;
                    *counts.entry((a, b)).or_insert(0) += 1;
                }
            }
        }
        let joint: Vec<JointStats> = pairs
            .iter()
            .zip(acc)
            .map(|(&(i, j), (count, counts))| {
                JointStats::from_counts(&columns[i].0, &columns[j].0, table.len(), count, counts)
            })
            .collect();
        TableStats {
            table: schema.name().to_string(),
            row_count: table.len(),
            // Committed counter, not the raw one: staleness bounds are
            // measured against committed work so rolled-back transactions
            // don't age the cache.
            version: table.committed_version(),
            columns,
            joint,
        }
    }

    /// Stats of one column.
    pub fn column(&self, name: &str) -> Option<&ColumnStats> {
        self.columns.iter().find(|(n, _)| n == name).map(|(_, s)| s)
    }

    /// Estimated fraction of all rows satisfying `cx = vx AND cy = vy`
    /// from the joint statistics of the column pair, in either column
    /// order. `None` when the pair is not tracked (high-distinct column
    /// or past the pair cap) — callers fall back to the marginal
    /// estimates.
    pub fn joint_selectivity(&self, cx: &str, vx: &Value, cy: &str, vy: &Value) -> Option<f64> {
        self.joint.iter().find_map(|j| {
            if j.col_a == cx && j.col_b == cy {
                Some(j.pair_selectivity(vx, vy))
            } else if j.col_a == cy && j.col_b == cx {
                Some(j.pair_selectivity(vy, vx))
            } else {
                None
            }
        })
    }

    /// Whether these stats are stale with respect to the live table's
    /// committed state.
    pub fn is_stale(&self, table: &Table) -> bool {
        table.committed_version() != self.version
    }
}

/// Entropy of a specific column restricted to a subset of rows, given by
/// the value of that column for each row in the subset. This is the core
/// quantity of the data-aware policy (computed over the candidate set).
pub fn subset_entropy(values: impl IntoIterator<Item = Value>) -> Result<f64> {
    let mut counts: HashMap<Value, usize> = HashMap::new();
    for v in values {
        if !v.is_null() {
            *counts.entry(v).or_insert(0) += 1;
        }
    }
    Ok(entropy_of_counts(counts.into_values()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;
    use crate::schema::TableSchema;
    use crate::table::Table;

    #[test]
    fn entropy_basics() {
        assert_eq!(entropy_of_counts([]), 0.0);
        assert_eq!(entropy_of_counts([5]), 0.0);
        assert!((entropy_of_counts([1, 1]) - 1.0).abs() < 1e-12);
        assert!((entropy_of_counts([1, 1, 1, 1]) - 2.0).abs() < 1e-12);
        // Skew lowers entropy.
        assert!(entropy_of_counts([9, 1]) < entropy_of_counts([5, 5]));
        // Zero counts are ignored.
        assert_eq!(entropy_of_counts([3, 0, 0]), 0.0);
    }

    #[test]
    fn entropy_upper_bound_is_log2_n() {
        let h = entropy_of_counts(vec![1usize; 1000]);
        assert!((h - 1000f64.log2()).abs() < 1e-9);
    }

    fn table_with_genres() -> Table {
        let schema = TableSchema::builder("movie")
            .column("movie_id", DataType::Int)
            .column("genre", DataType::Text)
            .nullable_column("rating", DataType::Float)
            .primary_key(&["movie_id"])
            .build()
            .unwrap();
        let mut t = Table::new(schema).unwrap();
        for i in 0..10i64 {
            let genre = if i < 6 {
                "Drama"
            } else if i < 9 {
                "Action"
            } else {
                "Noir"
            };
            let rating = if i == 0 {
                Value::Null
            } else {
                Value::Float(5.0 + (i % 5) as f64)
            };
            t.insert(Row::new(vec![Value::Int(i), genre.into(), rating]))
                .unwrap();
        }
        t
    }
    use crate::row::Row;

    #[test]
    fn column_stats_distinct_mcv_entropy() {
        let t = table_with_genres();
        let stats = TableStats::compute(&t);
        let genre = stats.column("genre").unwrap();
        assert_eq!(genre.distinct, 3);
        assert_eq!(genre.count, 10);
        assert_eq!(genre.most_common[0], (Value::Text("Drama".into()), 6));
        assert!(genre.entropy > 0.0 && genre.entropy < 3f64.log2() + 0.01);
        let rating = stats.column("rating").unwrap();
        assert_eq!(rating.null_count, 1);
        assert!((rating.fill_rate() - 0.9).abs() < 1e-12);
        let id = stats.column("movie_id").unwrap();
        assert_eq!(id.distinct, 10);
        assert!(
            (id.normalized_entropy() - 1.0).abs() < 1e-9,
            "ids are maximally informative"
        );
    }

    #[test]
    fn eq_selectivity_estimates() {
        let t = table_with_genres();
        let stats = TableStats::compute(&t);
        let genre = stats.column("genre").unwrap();
        assert!((genre.eq_selectivity(&Value::Text("Drama".into())) - 0.6).abs() < 1e-12);
        assert!((genre.eq_selectivity(&Value::Text("Noir".into())) - 0.1).abs() < 1e-12);
        // Unseen value: small but nonzero.
        let s = genre.eq_selectivity(&Value::Text("Western".into()));
        assert!(s > 0.0 && s < 0.2);
    }

    #[test]
    fn non_mcv_estimate_clamped_to_least_mcv_frequency() {
        // Hand-built stats shaped like a *sampled* pass: the average
        // non-MCV frequency (58/10 = 5.8 per value) exceeds the least
        // common tracked value (2). Unclamped, a never-seen value would
        // be estimated as more frequent than a tracked one — inverting
        // the plausibility order the MCV list exists to provide.
        let s = ColumnStats {
            count: 100,
            null_count: 0,
            distinct: 12,
            entropy: 0.0,
            most_common: vec![(Value::Int(0), 40), (Value::Int(1), 2)],
            histogram: None,
            min: Some(Value::Int(0)),
            max: Some(Value::Int(99)),
        };
        let unseen = s.eq_selectivity(&Value::Int(50));
        assert!(
            (unseen - 0.02).abs() < 1e-12,
            "clamped to least MCV frequency, got {unseen}"
        );
        assert!(unseen <= s.eq_selectivity(&Value::Int(1)));
    }

    #[test]
    fn joint_stats_track_correlated_pairs() {
        let schema = TableSchema::builder("shop")
            .column("id", DataType::Int)
            .column("city", DataType::Text)
            .nullable_column("country", DataType::Text)
            .primary_key(&["id"])
            .build()
            .unwrap();
        let mut t = Table::new(schema).unwrap();
        // city fully determines country: 4 cities, 2 countries.
        let cities = ["Berlin", "Munich", "Vienna", "Linz"];
        let countries = ["DE", "DE", "AT", "AT"];
        for i in 0..80i64 {
            let c = (i % 4) as usize;
            t.insert(Row::new(vec![
                Value::Int(i),
                cities[c].into(),
                countries[c].into(),
            ]))
            .unwrap();
        }
        let stats = TableStats::compute(&t);
        // `id` is high-distinct, so the only eligible pair is
        // (city, country).
        assert_eq!(stats.joint.len(), 1);
        let j = &stats.joint[0];
        assert_eq!((j.col_a.as_str(), j.col_b.as_str()), ("city", "country"));
        assert_eq!(j.rows, 80);
        assert_eq!(j.count, 80);
        assert_eq!(j.distinct, 4, "only co-occurring pairs are tracked");
        // Observed pair: exact joint frequency (25%), not the 12.5%
        // independence product of the marginals.
        let s = stats
            .joint_selectivity(
                "city",
                &Value::Text("Berlin".into()),
                "country",
                &Value::Text("DE".into()),
            )
            .unwrap();
        assert!((s - 0.25).abs() < 1e-12, "got {s}");
        // Flipped column order resolves to the same pair.
        let flipped = stats
            .joint_selectivity(
                "country",
                &Value::Text("DE".into()),
                "city",
                &Value::Text("Berlin".into()),
            )
            .unwrap();
        assert_eq!(s, flipped);
        // Contradictory pair (Berlin, AT): the list is complete, so the
        // combination provably never co-occurs.
        let never = stats
            .joint_selectivity(
                "city",
                &Value::Text("Berlin".into()),
                "country",
                &Value::Text("AT".into()),
            )
            .unwrap();
        assert!(never < 0.02, "got {never}");
        // Untracked pair (high-distinct column): no joint stats.
        assert!(stats
            .joint_selectivity("id", &Value::Int(3), "city", &Value::Text("Berlin".into()))
            .is_none());
    }

    #[test]
    fn joint_stats_skip_nulls_and_cap_pairs() {
        let schema = TableSchema::builder("t")
            .column("id", DataType::Int)
            .nullable_column("a", DataType::Int)
            .nullable_column("b", DataType::Int)
            .primary_key(&["id"])
            .build()
            .unwrap();
        let mut t = Table::new(schema).unwrap();
        for i in 0..20i64 {
            let a = if i % 5 == 0 {
                Value::Null
            } else {
                Value::Int(i % 3)
            };
            t.insert(Row::new(vec![Value::Int(i), a, Value::Int(i % 2)]))
                .unwrap();
        }
        let stats = TableStats::compute(&t);
        let j = stats.joint.iter().find(|j| j.col_a == "a").unwrap();
        assert_eq!(j.rows, 20);
        assert_eq!(j.count, 16, "NULL-bearing rows are excluded");
        let total: usize = j.most_common.iter().map(|(_, _, c)| c).sum();
        assert_eq!(total, 16);
    }

    #[test]
    fn stats_staleness_via_version() {
        let mut t = table_with_genres();
        let stats = TableStats::compute(&t);
        assert!(!stats.is_stale(&t));
        t.insert(row![100, "Drama", 5.0]).unwrap();
        assert!(stats.is_stale(&t));
    }

    #[test]
    fn histogram_selectivity() {
        let values: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let h = Histogram::build(&values, 10).unwrap();
        assert_eq!(h.buckets.iter().sum::<usize>(), 100);
        let s = h.range_selectivity(0.0, 49.5);
        assert!((s - 0.5).abs() < 0.06, "got {s}");
        assert_eq!(h.range_selectivity(200.0, 300.0), 0.0);
        assert_eq!(h.range_selectivity(50.0, 40.0), 0.0);
        // Degenerate all-equal histogram.
        let h1 = Histogram::build(&[2.0, 2.0], 4).unwrap();
        assert_eq!(h1.range_selectivity(1.0, 3.0), 1.0);
        assert_eq!(h1.range_selectivity(3.0, 4.0), 0.0);
        assert!(Histogram::build(&[], 4).is_none());
    }

    #[test]
    fn subset_entropy_over_candidate_values() {
        let h = subset_entropy(vec![
            Value::Text("a".into()),
            Value::Text("a".into()),
            Value::Text("b".into()),
            Value::Null,
        ])
        .unwrap();
        // 2x a, 1x b -> H = 0.918 bits
        assert!((h - 0.9182958340544896).abs() < 1e-9);
    }

    #[test]
    fn date_columns_get_histograms() {
        let schema = TableSchema::builder("s")
            .column("id", DataType::Int)
            .column("d", DataType::Date)
            .primary_key(&["id"])
            .build()
            .unwrap();
        let mut t = Table::new(schema).unwrap();
        for i in 0..30i64 {
            let d = crate::value::Date::new(2022, 1, 1).unwrap().plus_days(i);
            t.insert(Row::new(vec![Value::Int(i), Value::Date(d)]))
                .unwrap();
        }
        let stats = TableStats::compute(&t);
        assert!(stats.column("d").unwrap().histogram.is_some());
    }
}
