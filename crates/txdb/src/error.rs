//! Error types for the transactional database substrate.

use std::fmt;

use crate::value::DataType;

/// All errors that the database engine can produce.
#[derive(Debug, Clone, PartialEq)]
pub enum TxdbError {
    /// Referenced a table that does not exist in the catalog.
    UnknownTable(String),
    /// Referenced a column that does not exist on the given table.
    UnknownColumn { table: String, column: String },
    /// Attempted to create a table whose name is already taken.
    DuplicateTable(String),
    /// Attempted to create an index that already exists.
    DuplicateIndex { table: String, column: String },
    /// A value did not match the declared column type.
    TypeMismatch {
        expected: DataType,
        got: String,
        context: String,
    },
    /// A row violated a primary-key or unique constraint.
    DuplicateKey { table: String, key: String },
    /// A row referenced a non-existent parent row, or a delete would
    /// orphan child rows (referential actions are `RESTRICT`).
    ForeignKeyViolation { table: String, detail: String },
    /// A `NOT NULL` column received a null value.
    NotNullViolation { table: String, column: String },
    /// Row arity did not match the table schema.
    ArityMismatch {
        table: String,
        expected: usize,
        got: usize,
    },
    /// Referenced a stored procedure that does not exist.
    UnknownProcedure(String),
    /// Procedure invoked with missing or unexpected arguments.
    BadProcedureArgs { procedure: String, detail: String },
    /// The requested row id does not exist (possibly deleted).
    NoSuchRow { table: String },
    /// A value literal could not be parsed as the requested type.
    InvalidValue(String),
    /// SQL text could not be lexed or parsed.
    Parse(String),
    /// A transaction was explicitly aborted.
    Aborted(String),
    /// A write-write conflict under snapshot isolation: the row was
    /// modified by a transaction this one cannot see (first committer
    /// wins). The later writer must abort and retry on fresh state.
    Serialization { table: String, detail: String },
    /// A query's tracked memory footprint would exceed the configured
    /// execution budget and no degradation path (partitioned hash
    /// build) could absorb the overrun. The query failed atomically —
    /// no partial results were produced.
    ResourceExhausted {
        /// The configured budget, in bytes.
        budget: usize,
        /// The tracked footprint that the failed charge would have
        /// reached, in bytes.
        requested: usize,
    },
    /// An operating-system I/O failure on the durability path (WAL
    /// append, fsync, snapshot write, directory creation). Carries the
    /// rendered `std::io::Error` rather than the error itself so the
    /// variant stays `Clone + PartialEq` with the rest of the enum.
    Io {
        /// What the engine was doing (e.g. `"wal append"`).
        context: String,
        /// The rendered OS error.
        detail: String,
    },
    /// On-disk state failed validation on open: a bad magic number, an
    /// unsupported format version, a CRC-valid but undecodable record,
    /// or a snapshot/log generation mismatch. Unlike a torn tail (which
    /// recovery silently discards), corruption is never auto-repaired.
    Corrupt(String),
    /// A quiescent-point operation (checkpoint, dump) was refused
    /// because transactions are still in flight — their uncommitted
    /// versions would leak into the serialized state.
    ActiveTransactions {
        /// The refused operation (e.g. `"checkpoint"`).
        operation: String,
        /// How many transactions were active.
        count: usize,
    },
}

impl TxdbError {
    /// Wrap an OS error on the durability path.
    pub(crate) fn io(context: impl Into<String>, err: &std::io::Error) -> TxdbError {
        TxdbError::Io {
            context: context.into(),
            detail: err.to_string(),
        }
    }
}

impl fmt::Display for TxdbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxdbError::UnknownTable(t) => write!(f, "unknown table `{t}`"),
            TxdbError::UnknownColumn { table, column } => {
                write!(f, "unknown column `{column}` on table `{table}`")
            }
            TxdbError::DuplicateTable(t) => write!(f, "table `{t}` already exists"),
            TxdbError::DuplicateIndex { table, column } => {
                write!(f, "index on `{table}.{column}` already exists")
            }
            TxdbError::TypeMismatch {
                expected,
                got,
                context,
            } => {
                write!(
                    f,
                    "type mismatch in {context}: expected {expected}, got {got}"
                )
            }
            TxdbError::DuplicateKey { table, key } => {
                write!(f, "duplicate key {key} for table `{table}`")
            }
            TxdbError::ForeignKeyViolation { table, detail } => {
                write!(f, "foreign key violation on `{table}`: {detail}")
            }
            TxdbError::NotNullViolation { table, column } => {
                write!(f, "null value in NOT NULL column `{table}.{column}`")
            }
            TxdbError::ArityMismatch {
                table,
                expected,
                got,
            } => {
                write!(
                    f,
                    "row arity mismatch for `{table}`: expected {expected} values, got {got}"
                )
            }
            TxdbError::UnknownProcedure(p) => write!(f, "unknown procedure `{p}`"),
            TxdbError::BadProcedureArgs { procedure, detail } => {
                write!(f, "bad arguments for procedure `{procedure}`: {detail}")
            }
            TxdbError::NoSuchRow { table } => write!(f, "no such row in table `{table}`"),
            TxdbError::InvalidValue(s) => write!(f, "invalid value: {s}"),
            TxdbError::Parse(s) => write!(f, "SQL parse error: {s}"),
            TxdbError::Aborted(s) => write!(f, "transaction aborted: {s}"),
            TxdbError::Serialization { table, detail } => {
                write!(f, "serialization conflict on `{table}`: {detail}")
            }
            TxdbError::ResourceExhausted { budget, requested } => {
                write!(
                    f,
                    "memory budget exhausted: needed {requested} bytes against a budget of {budget}"
                )
            }
            TxdbError::Io { context, detail } => {
                write!(f, "I/O error during {context}: {detail}")
            }
            TxdbError::Corrupt(detail) => write!(f, "corrupt on-disk state: {detail}"),
            TxdbError::ActiveTransactions { operation, count } => {
                write!(
                    f,
                    "cannot {operation} with {count} active transaction(s): \
                     commit or roll back first"
                )
            }
        }
    }
}

impl std::error::Error for TxdbError {}

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, TxdbError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_human_readable() {
        let e = TxdbError::UnknownColumn {
            table: "movie".into(),
            column: "titel".into(),
        };
        assert_eq!(e.to_string(), "unknown column `titel` on table `movie`");
        let e = TxdbError::NotNullViolation {
            table: "customer".into(),
            column: "name".into(),
        };
        assert!(e.to_string().contains("NOT NULL"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_e: &dyn std::error::Error) {}
        takes_err(&TxdbError::UnknownTable("x".into()));
    }
}
