//! `EXPLAIN [ANALYZE]` snapshot tests: exact rendered operator trees on
//! fixed fixtures, pinning the operators, join strategies, partition
//! counts and estimated cardinalities the lowering produces — plus
//! `ANALYZE` tests asserting the actual-row annotations match real
//! result sizes.
//!
//! Every test pins `PlanOptions::memory_budget` explicitly, so the
//! snapshots hold both with and without the `tight-budget` feature
//! (which only flips the *default* budget).

use cat_txdb::sql::{
    execute, execute_script, execute_select_with, explain_select_with, parse_statement,
    PlanOptions, QueryResult, Statement,
};
use cat_txdb::{row, Database, Value};

/// Parse `sql` (a plain SELECT) and render its `EXPLAIN [ANALYZE]` tree
/// under `opts`, one line per operator.
fn explain(db: &Database, sql: &str, opts: &PlanOptions, analyze: bool) -> Vec<String> {
    let Statement::Select(sel) = parse_statement(sql).unwrap() else {
        panic!("fixture query is not a SELECT: {sql}")
    };
    explain_select_with(db, &sel, opts, analyze)
        .unwrap()
        .rows
        .into_iter()
        .map(|mut row| match row.remove(0) {
            Value::Text(line) => line,
            other => panic!("EXPLAIN emitted a non-text cell: {other:?}"),
        })
        .collect()
}

/// Unbudgeted defaults — pinned so snapshots are identical under the
/// `tight-budget` feature.
fn unbudgeted() -> PlanOptions {
    PlanOptions {
        memory_budget: None,
        ..PlanOptions::default()
    }
}

/// Small deterministic two-table fixture: `album` (8 rows; hash index
/// on `genre`, range index on `price`, `stock` unindexed) and `track`
/// (16 rows; pk index, range index on the `album_id` join key).
fn music_db() -> Database {
    let mut db = Database::new();
    execute_script(
        &mut db,
        "CREATE TABLE album (album_id INT PRIMARY KEY, genre TEXT, price FLOAT, stock INT);
         CREATE TABLE track (track_id INT PRIMARY KEY, album_id INT, length INT)",
    )
    .unwrap();
    for i in 0..8i64 {
        let genre = ["jazz", "rock"][(i % 2) as usize];
        db.insert("album", row![i, genre, 5.0 + i as f64, i % 3])
            .unwrap();
    }
    for i in 0..16i64 {
        db.insert("track", row![i, i % 8, 120 + i]).unwrap();
    }
    {
        let t = db.table_mut("album").unwrap();
        t.create_index("genre").unwrap();
        t.create_range_index("price").unwrap();
    }
    db.table_mut("track")
        .unwrap()
        .create_range_index("album_id")
        .unwrap();
    db
}

#[test]
fn explain_single_table_scan_filter_topk() {
    let db = music_db();
    let tree = explain(
        &db,
        "SELECT album_id, price FROM album WHERE stock = 1 ORDER BY price DESC LIMIT 2",
        &unbudgeted(),
        false,
    );
    assert_eq!(
        tree,
        vec![
            "Project [album_id, price] (est=2 rows)",
            "  TopK [price desc, k=2] (est=2 rows)",
            "    Filter [pushed: 1] (est=3 rows)",
            "      Scan [album] (est=8 rows)",
        ]
    );
}

#[test]
fn explain_build_hash_join_with_pushed_filter() {
    let db = music_db();
    let tree = explain(
        &db,
        "SELECT album.price, track.length FROM album JOIN track ON track.album_id = album.album_id WHERE album.genre = 'jazz'",
        &unbudgeted(),
        false,
    );
    assert_eq!(
        tree,
        vec![
            "Project [album.price, track.length] (est=8 rows)",
            "  BuildHashJoin [track.album_id, partitions=1] (est=8 rows)",
            "    Filter [pushed: 1] (est=4 rows)",
            "      Scan [album] (est=8 rows)",
        ]
    );
}

#[test]
fn explain_index_probe_join() {
    let db = music_db();
    let tree = explain(
        &db,
        "SELECT track.track_id, album.genre FROM track JOIN album ON album.album_id = track.album_id",
        &unbudgeted(),
        false,
    );
    assert_eq!(
        tree,
        vec![
            "Project [track.track_id, album.genre] (est=16 rows)",
            "  IndexProbeJoin [album.album_id] (est=16 rows)",
            "    Scan [track] (est=16 rows)",
        ]
    );
}

#[test]
fn explain_merge_range_join_with_index_scan() {
    // The MergeRange gate: an unindexed-hash float join key with range
    // indexes on both sides, and a selective outer (PK equality) so the
    // ordered walk beats building a hash map.
    let mut db = Database::new();
    execute_script(
        &mut db,
        "CREATE TABLE lt (l_id INT PRIMARY KEY, k FLOAT);
         CREATE TABLE rt (r_id INT PRIMARY KEY, k FLOAT, tag TEXT);
         INSERT INTO lt VALUES (1, 1.0), (2, 2.0), (3, 3.0), (4, 4.0), (5, 2.0), (6, 9.0);
         INSERT INTO rt VALUES (10, 1.0, 'a'), (11, 2.0, 'b'), (12, 2.0, 'c'),
                               (13, 5.0, 'd'), (14, 6.0, 'e'), (15, 7.0, 'f')",
    )
    .unwrap();
    db.table_mut("lt").unwrap().create_range_index("k").unwrap();
    db.table_mut("rt").unwrap().create_range_index("k").unwrap();
    let tree = explain(
        &db,
        "SELECT lt.l_id, rt.tag FROM lt JOIN rt ON rt.k = lt.k WHERE lt.l_id = 2",
        &unbudgeted(),
        false,
    );
    assert_eq!(
        tree,
        vec![
            "Project [lt.l_id, rt.tag] (est=1 rows)",
            "  MergeRangeJoin [rt.k] (est=1 rows)",
            "    IndexScan [lt via index_eq(l_id)] (est=1 rows)",
        ]
    );
}

#[test]
fn explain_aggregate_pipeline() {
    let db = music_db();
    let tree = explain(
        &db,
        "SELECT genre, count(*), avg(price) FROM album GROUP BY genre ORDER BY genre LIMIT 3",
        &unbudgeted(),
        false,
    );
    assert_eq!(
        tree,
        vec![
            "Project [genre, count(*), avg(price)] (est=3 rows)",
            "  Limit [3] (est=3 rows)",
            "    Order [genre]",
            "      Aggregate [group_by=(genre), aggs=2]",
            "        Scan [album] (est=8 rows)",
        ]
    );
}

/// Skewed build side large enough that a 256 KiB budget makes the
/// planner partition the hash build (hot key 7 diverted resident).
fn skewed_db() -> Database {
    let mut db = Database::new();
    execute_script(
        &mut db,
        "CREATE TABLE probe (p_id INT PRIMARY KEY, k INT);
         CREATE TABLE build (b_id INT PRIMARY KEY, k INT)",
    )
    .unwrap();
    for i in 0..10_000i64 {
        let k = if i % 2 == 0 { 7 } else { i };
        db.insert("build", row![i, k]).unwrap();
    }
    for i in 0..32i64 {
        db.insert("probe", row![i, if i % 2 == 0 { 7 } else { 3 * i }])
            .unwrap();
    }
    db
}

#[test]
fn explain_partitioned_hash_join() {
    let db = skewed_db();
    let opts = PlanOptions {
        memory_budget: Some(256 * 1024),
        ..PlanOptions::default()
    };
    let tree = explain(
        &db,
        "SELECT probe.p_id, build.b_id FROM probe JOIN build ON build.k = probe.k",
        &opts,
        false,
    );
    assert_eq!(
        tree,
        vec![
            "Project [probe.p_id, build.b_id] (est=64 rows)",
            "  BuildHashJoin [build.k, partitions=64, hot=1] (est=64 rows)",
            "    Scan [probe] (est=32 rows)",
        ]
    );
}

#[test]
fn explain_analyze_actual_rows_match_result_sizes() {
    let db = music_db();
    let q = "SELECT album.price, track.length FROM album JOIN track ON track.album_id = album.album_id WHERE album.genre = 'jazz'";
    let Statement::Select(sel) = parse_statement(q).unwrap() else {
        unreachable!()
    };
    let result = execute_select_with(&db, &sel, &unbudgeted()).unwrap();
    assert_eq!(result.rows.len(), 8);
    let tree = explain(&db, q, &unbudgeted(), true);
    assert_eq!(
        tree,
        vec![
            "Project [album.price, track.length] (est=8 rows, actual=8 rows, peak=0 B)",
            "  BuildHashJoin [track.album_id, partitions=1] (est=8 rows, actual=8 rows, peak=512 B)",
            "    Filter [pushed: 1] (est=4 rows, actual=4 rows, peak=0 B)",
            "      Scan [album] (est=8 rows, actual=8 rows, peak=0 B)",
        ]
    );
    // The root's actual-row annotation is the result size by contract.
    let root_actual = parse_annotation(&tree[0], "actual=");
    assert_eq!(root_actual, result.rows.len());
}

/// Extract the numeric value following `key` in a rendered node line.
fn parse_annotation(line: &str, key: &str) -> usize {
    let at = line.find(key).unwrap_or_else(|| {
        panic!("annotation `{key}` missing in line `{line}`");
    });
    line[at + key.len()..]
        .split(|c: char| !c.is_ascii_digit())
        .next()
        .unwrap()
        .parse()
        .unwrap()
}

/// 600-row fixture where `country` is fully determined by `city`: the
/// correlated pair the joint-statistics estimator prices. `EXPLAIN
/// ANALYZE` must show per-operator estimated vs actual rows — and the
/// correlation-aware estimate must beat the independence product on the
/// filtered node.
#[test]
fn explain_analyze_shows_estimates_vs_actuals_on_correlated_data() {
    let mut db = Database::new();
    execute_script(
        &mut db,
        "CREATE TABLE store (store_id INT PRIMARY KEY, city TEXT, country TEXT)",
    )
    .unwrap();
    let cities = ["Berlin", "Munich", "Hamburg", "Cologne", "Vienna", "Linz"];
    for i in 0..600i64 {
        let city = cities[(i % 6) as usize];
        let country = if city == "Vienna" || city == "Linz" {
            "Austria"
        } else {
            "Germany"
        };
        db.insert("store", row![i, city, country]).unwrap();
    }
    {
        let t = db.table_mut("store").unwrap();
        t.create_index("city").unwrap();
        t.create_index("country").unwrap();
    }
    let q = "SELECT store_id FROM store WHERE city = 'Berlin' AND country = 'Germany'";
    let correlated = explain(&db, q, &unbudgeted(), true);
    assert_eq!(
        correlated,
        vec![
            "Project [store_id] (est=100 rows, actual=100 rows, peak=0 B)",
            "  Filter [pushed: 1] (est=100 rows, actual=100 rows, peak=0 B)",
            "    IndexScan [store via index_eq(city)] (est=100 rows, actual=100 rows, peak=0 B)",
        ]
    );
    let independence = explain(
        &db,
        q,
        &PlanOptions {
            memory_budget: None,
            ..PlanOptions::independence_only()
        },
        true,
    );
    assert_eq!(
        independence,
        vec![
            "Project [store_id] (est=67 rows, actual=100 rows, peak=0 B)",
            "  Filter [pushed: 1] (est=67 rows, actual=100 rows, peak=0 B)",
            "    IndexScan [store via index_eq(city)] (est=100 rows, actual=100 rows, peak=0 B)",
        ]
    );
    // The joint-statistics estimate is exact where the independence
    // product under-counts — visible per operator, not just in totals.
    let actual = parse_annotation(&correlated[1], "actual=");
    let corr_est = parse_annotation(&correlated[1], "est=");
    let indep_est = parse_annotation(&independence[1], "est=");
    assert_eq!(corr_est, actual);
    assert!(
        corr_est.abs_diff(actual) < indep_est.abs_diff(actual),
        "correlation-aware estimate ({corr_est}) should beat independence ({indep_est}) against actual {actual}"
    );
}

#[test]
fn explain_statement_executes_through_the_shell_entry_point() {
    let mut db = music_db();
    let QueryResult::Rows(rs) = execute(&mut db, "EXPLAIN SELECT * FROM album").unwrap() else {
        panic!("EXPLAIN did not return rows")
    };
    assert_eq!(rs.columns, vec!["plan"]);
    let lines: Vec<&str> = rs
        .rows
        .iter()
        .map(|r| match &r[0] {
            Value::Text(s) => s.as_str(),
            other => panic!("non-text plan cell: {other:?}"),
        })
        .collect();
    assert_eq!(
        lines,
        vec!["Project [*] (est=8 rows)", "  Scan [album] (est=8 rows)"]
    );
    // EXPLAIN ANALYZE through the same entry point carries actuals.
    let QueryResult::Rows(rs) = execute(&mut db, "EXPLAIN ANALYZE SELECT * FROM album").unwrap()
    else {
        panic!("EXPLAIN ANALYZE did not return rows")
    };
    let Value::Text(root) = &rs.rows[0][0] else {
        panic!("non-text plan cell")
    };
    assert_eq!(parse_annotation(root, "actual="), 8);
}

#[test]
fn explain_rejects_non_select_statements() {
    let mut db = music_db();
    let err = execute(&mut db, "EXPLAIN DELETE FROM album").unwrap_err();
    assert!(
        err.to_string().contains("EXPLAIN only applies to SELECT"),
        "unexpected error: {err}"
    );
}
