//! Crash-consistency harness for the change log (WAL) and snapshot
//! checkpoints.
//!
//! The central invariant: after *any* crash — a log torn at any frame
//! boundary, a partially written frame, a flipped payload byte, a log
//! append that failed mid-commit — reopening the data directory yields
//! exactly the last committed state, nothing more and nothing less.
//!
//! The harness drives a fixed transactional workload, records a shadow
//! SQL dump after every commit, then mutilates the on-disk log at every
//! frame boundary and checks the recovered database against the shadow
//! that matches the surviving prefix of `Commit` records.

use std::path::{Path, PathBuf};

use cat_txdb::database::{SNAPSHOT_FILE, WAL_FILE};
use cat_txdb::{
    dump_sql, row, scan_wal, ChangeRecord, DataType, Database, Predicate, TableSchema, TxdbError,
    Value, WalOptions,
};

/// A fresh, empty scratch directory under the system temp dir, unique
/// per test name and process.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("txdb-recovery-tests")
        .join(format!("{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Open without fsync: these tests exercise crash *consistency* (what
/// replay makes of the bytes that did reach the file), not the fsync
/// policy, and the full boundary sweep reopens the directory hundreds
/// of times.
fn open_fast(dir: &Path) -> Database {
    Database::open_with(dir, WalOptions { fsync: false }).expect("open")
}

fn accounts_schema() -> TableSchema {
    TableSchema::builder("account")
        .column("id", DataType::Int)
        .column("balance", DataType::Int)
        .nullable_column("note", DataType::Text)
        .primary_key(&["id"])
        .build()
        .unwrap()
}

/// Physical row id of the account with primary key `id` (latest
/// committed state). The mutation API is row-id-based.
fn rid_of(db: &Database, id: i64) -> cat_txdb::RowId {
    let hits = db.select("account", &Predicate::eq("id", id)).unwrap();
    assert_eq!(hits.len(), 1, "account id {id} not unique/present");
    hits[0].0
}

/// The canonical committed state of a database, for equality checks:
/// the SQL dump (schema + rows) plus every table's physical row ids
/// (the dump alone would not catch a replay that renumbers rows).
type Shadow = (String, Vec<(String, Vec<u64>)>);

fn observed_state(db: &Database) -> Shadow {
    let dump = dump_sql(db).expect("no active txns when observing state");
    let mut rids = Vec::new();
    for t in db.table_names() {
        let ids: Vec<u64> = db.table(t).unwrap().scan().map(|(rid, _)| rid.0).collect();
        rids.push((t.to_string(), ids));
    }
    (dump, rids)
}

// ---------------------------------------------------------------------
// Basic durability
// ---------------------------------------------------------------------

#[test]
fn drop_and_reopen_recovers_committed_state() {
    let dir = scratch("drop-reopen");
    let mut db = open_fast(&dir);
    db.create_table(accounts_schema()).unwrap();
    // Auto-commit writes...
    for i in 0..10i64 {
        db.insert("account", row![i, 100 * i, Value::Null]).unwrap();
    }
    // ...an explicit committed transaction...
    let (rid3, rid7) = (rid_of(&db, 3), rid_of(&db, 7));
    let txn = db.txn_begin();
    db.txn_update(txn, "account", rid3, "balance", Value::Int(-1))
        .unwrap();
    db.txn_delete(txn, "account", rid7).unwrap();
    db.txn_insert(txn, "account", row![77, 7, "seventy-seven"])
        .unwrap();
    db.txn_commit(txn).unwrap();
    // ...a rolled-back transaction (must leave no trace)...
    let txn = db.txn_begin();
    db.txn_insert(txn, "account", row![666, 0, Value::Null])
        .unwrap();
    db.txn_rollback(txn).unwrap();
    // ...and an uncommitted transaction still open at the "crash".
    let open_txn = db.txn_begin();
    db.txn_insert(open_txn, "account", row![999, 0, Value::Null])
        .unwrap();

    // Observe the state as a fresh reader sees it (committed only) by
    // rolling back the straggler on a clone; the on-disk files never saw
    // the uncommitted writes at all.
    let mut observer = db.clone();
    observer.txn_rollback(open_txn).unwrap();
    let expect = observed_state(&observer);

    drop(db); // crash: no close(), no checkpoint
    let reopened = open_fast(&dir);
    assert_eq!(observed_state(&reopened), expect);
    // The id allocator never rewinds below any id the log has seen:
    // every logged txn id stays smaller than the new watermark.
    let scan = scan_wal(&std::fs::read(dir.join(WAL_FILE)).unwrap())
        .unwrap()
        .expect("log exists");
    let max_logged = scan
        .records
        .iter()
        .filter_map(ChangeRecord::txn)
        .max()
        .unwrap();
    assert!(reopened.snapshot().watermark() > max_logged);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn reopened_database_keeps_accepting_writes() {
    let dir = scratch("reopen-write");
    let mut db = open_fast(&dir);
    db.create_table(accounts_schema()).unwrap();
    db.insert("account", row![1, 10, Value::Null]).unwrap();
    drop(db);

    let mut db = open_fast(&dir);
    // PK uniqueness survived recovery.
    assert!(db.insert("account", row![1, 99, Value::Null]).is_err());
    db.insert("account", row![2, 20, Value::Null]).unwrap();
    let txn = db.txn_begin();
    db.txn_insert(txn, "account", row![3, 30, Value::Null])
        .unwrap();
    db.txn_commit(txn).unwrap();
    drop(db);

    let db = open_fast(&dir);
    assert_eq!(db.table("account").unwrap().len(), 3);
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Checkpoints
// ---------------------------------------------------------------------

#[test]
fn checkpoint_truncates_log_and_preserves_state() {
    let dir = scratch("checkpoint");
    let mut db = open_fast(&dir);
    db.create_table(accounts_schema()).unwrap();
    for i in 0..20i64 {
        db.insert("account", row![i, i, Value::Null]).unwrap();
    }
    assert!(db.wal_appended_records() > 0);
    db.checkpoint().unwrap();
    assert_eq!(db.wal_appended_records(), 0, "checkpoint truncates the log");
    // Writes after the checkpoint land in the fresh log.
    db.insert("account", row![100, 1, "post-checkpoint"])
        .unwrap();
    let expect = observed_state(&db);
    drop(db);

    let reopened = open_fast(&dir);
    assert_eq!(observed_state(&reopened), expect);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn checkpoint_refuses_active_transactions() {
    let dir = scratch("checkpoint-guard");
    let mut db = open_fast(&dir);
    db.create_table(accounts_schema()).unwrap();
    let txn = db.txn_begin();
    db.txn_insert(txn, "account", row![1, 1, Value::Null])
        .unwrap();
    let err = db.checkpoint().unwrap_err();
    assert!(
        matches!(
            &err,
            TxdbError::ActiveTransactions { operation, count: 1 } if operation == "checkpoint"
        ),
        "got {err:?}"
    );
    db.txn_commit(txn).unwrap();
    db.checkpoint().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn in_memory_database_refuses_checkpoint() {
    let mut db = Database::new();
    let err = db.checkpoint().unwrap_err();
    assert!(matches!(err, TxdbError::Io { .. }), "got {err:?}");
}

#[test]
fn stale_log_after_interrupted_checkpoint_is_discarded() {
    // Simulate a crash *between* "snapshot renamed into place" and "log
    // truncated": the old-generation log sits next to the new-generation
    // snapshot. Its contents are already inside the snapshot — replaying
    // them twice would double-apply.
    let dir = scratch("stale-log");
    let mut db = open_fast(&dir);
    db.create_table(accounts_schema()).unwrap();
    db.insert("account", row![1, 10, Value::Null]).unwrap();
    drop(db);
    let stale_log = std::fs::read(dir.join(WAL_FILE)).unwrap();

    let mut db = open_fast(&dir);
    db.checkpoint().unwrap();
    let expect = observed_state(&db);
    drop(db);
    // Put the pre-checkpoint log back, as the interrupted crash left it.
    std::fs::write(dir.join(WAL_FILE), &stale_log).unwrap();

    let reopened = open_fast(&dir);
    assert_eq!(observed_state(&reopened), expect);
    assert_eq!(
        reopened.table("account").unwrap().len(),
        1,
        "no double apply"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn log_newer_than_snapshot_is_corrupt() {
    let dir = scratch("newer-log");
    let mut db = open_fast(&dir);
    db.create_table(accounts_schema()).unwrap();
    db.checkpoint().unwrap(); // snapshot generation 1, log generation 1
    drop(db);
    // Losing the snapshot leaves a generation-1 log with no base to
    // apply on: recovery must refuse, not silently replay onto empty.
    std::fs::remove_file(dir.join(SNAPSHOT_FILE)).unwrap();
    let err = Database::open(&dir).unwrap_err();
    assert!(matches!(err, TxdbError::Corrupt(_)), "got {err:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Torn-log sweep: kill the log at every frame boundary
// ---------------------------------------------------------------------

/// Drive a workload of explicit transactions, recording a shadow dump
/// after every durable point (the DDL record, then every commit).
/// Returns the shadow states: `shadows[k]` is the expected observable
/// state once the first `k` durable points have been replayed.
fn committed_workload(dir: &Path) -> Vec<Shadow> {
    let mut db = open_fast(dir);
    let mut shadows = Vec::new();
    shadows.push(observed_state(&db)); // empty database, nothing replayed
    db.create_table(accounts_schema()).unwrap();
    shadows.push(observed_state(&db)); // DDL applied
    let mut commit = |db: &mut Database, ops: &dyn Fn(&mut Database, u64)| {
        let txn = db.txn_begin();
        ops(db, txn);
        db.txn_commit(txn).unwrap();
        shadows.push(observed_state(db));
    };
    commit(&mut db, &|db, t| {
        for i in 0..4i64 {
            db.txn_insert(t, "account", row![i, 10 * i, Value::Null])
                .unwrap();
        }
    });
    commit(&mut db, &|db, t| {
        let rid2 = rid_of(db, 2);
        db.txn_update(t, "account", rid2, "balance", Value::Int(777))
            .unwrap();
        db.txn_insert(t, "account", row![9, 9, "nine"]).unwrap();
    });
    commit(&mut db, &|db, t| {
        let (rid0, rid9) = (rid_of(db, 0), rid_of(db, 9));
        db.txn_delete(t, "account", rid0).unwrap();
        db.txn_update(t, "account", rid9, "note", Value::Null)
            .unwrap();
    });
    commit(&mut db, &|db, t| {
        let (rid1, rid9) = (rid_of(db, 1), rid_of(db, 9));
        db.txn_insert(t, "account", row![12, 1, Value::Null])
            .unwrap();
        db.txn_delete(t, "account", rid9).unwrap();
        db.txn_update(t, "account", rid1, "balance", Value::Int(-5))
            .unwrap();
    });
    drop(db); // crash, not close: the log holds everything
    shadows
}

/// How many durable points the first `k` records of the log hold: a
/// `Commit` publishes its batch, and DDL records apply immediately.
/// (Auto-commit txn-0 writes would count too; this workload has none.)
fn commits_in_prefix(records: &[ChangeRecord], k: usize) -> usize {
    records[..k]
        .iter()
        .filter(|r| {
            matches!(
                r,
                ChangeRecord::Commit { .. }
                    | ChangeRecord::CreateTable { .. }
                    | ChangeRecord::DropTable { .. }
                    | ChangeRecord::CreateIndex { .. }
            )
        })
        .count()
}

#[test]
fn torn_log_recovers_last_committed_prefix_at_every_boundary() {
    let dir = scratch("torn-sweep");
    let shadows = committed_workload(&dir);
    let wal_path = dir.join(WAL_FILE);
    let pristine = std::fs::read(&wal_path).unwrap();
    let scan = scan_wal(&pristine).unwrap().expect("log has a header");
    assert_eq!(
        commits_in_prefix(&scan.records, scan.records.len()),
        shadows.len() - 1,
        "workload and log disagree on commit count"
    );

    // Boundaries to kill at: the header end, plus just-past every frame —
    // and for each, also a cut *inside* the following frame (torn write).
    let mut cuts: Vec<(u64, usize)> = Vec::new(); // (cut at byte, frames fully kept)
    let mut starts = vec![cat_txdb::wal::WAL_HEADER_LEN];
    starts.extend(scan.frame_ends.iter().copied());
    for (frames_kept, &start) in starts.iter().enumerate() {
        cuts.push((start, frames_kept));
        let next_end = scan.frame_ends.get(frames_kept).copied();
        if let Some(end) = next_end {
            // Mid-frame cuts: 1 byte in (inside the length word) and 1
            // byte short of whole (payload truncated).
            cuts.push((start + 1, frames_kept));
            cuts.push((end - 1, frames_kept));
        }
    }

    for (cut, frames_kept) in cuts {
        std::fs::write(&wal_path, &pristine[..cut as usize]).unwrap();
        let reopened = open_fast(&dir);
        let expect = &shadows[commits_in_prefix(&scan.records, frames_kept)];
        assert_eq!(
            &observed_state(&reopened),
            expect,
            "cut at byte {cut} ({frames_kept} whole frames) recovered the wrong state"
        );
        // Recovery truncated the torn tail: the next open must replay
        // identically even though we do not restore the pristine bytes.
        let again = open_fast(&dir);
        assert_eq!(
            &observed_state(&again),
            expect,
            "recovery is not idempotent at {cut}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn flipped_crc_byte_discards_the_final_record() {
    let dir = scratch("crc-flip");
    let shadows = committed_workload(&dir);
    let wal_path = dir.join(WAL_FILE);
    let pristine = std::fs::read(&wal_path).unwrap();
    let scan = scan_wal(&pristine).unwrap().expect("log has a header");
    let frames = scan.frame_ends.len();
    assert!(frames >= 2);

    // Flip one byte in the payload of the final frame (its record is the
    // last Commit): the CRC no longer matches, the whole final batch is
    // an uncommitted tail, and recovery lands on the prior commit.
    let mut bytes = pristine;
    let last = *scan.frame_ends.last().unwrap() as usize;
    bytes[last - 1] ^= 0xFF;
    std::fs::write(&wal_path, &bytes).unwrap();
    let reopened = open_fast(&dir);
    let expect = &shadows[commits_in_prefix(&scan.records, frames - 1)];
    assert_eq!(&observed_state(&reopened), expect);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn mid_log_corruption_stops_replay_at_the_damage() {
    // A flipped byte in the *middle* of the log: everything after it is
    // indistinguishable from a torn tail, so recovery keeps the clean
    // prefix and drops the rest. (Documented limit: no per-frame
    // resynchronization — see ARCHITECTURE.md.)
    let dir = scratch("mid-corrupt");
    let shadows = committed_workload(&dir);
    let wal_path = dir.join(WAL_FILE);
    let pristine = std::fs::read(&wal_path).unwrap();
    let scan = scan_wal(&pristine).unwrap().expect("log has a header");
    let frames = scan.frame_ends.len();
    let mid = frames / 2;
    let mut bytes = pristine;
    let target = scan.frame_ends[mid] as usize - 1; // last payload byte of frame `mid`
    bytes[target] ^= 0x55;
    std::fs::write(&wal_path, &bytes).unwrap();
    let reopened = open_fast(&dir);
    let expect = &shadows[commits_in_prefix(&scan.records, mid)];
    assert_eq!(&observed_state(&reopened), expect);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn foreign_magic_number_fails_loudly() {
    let dir = scratch("foreign-magic");
    let mut db = open_fast(&dir);
    db.create_table(accounts_schema()).unwrap();
    drop(db);
    let wal_path = dir.join(WAL_FILE);
    let mut bytes = std::fs::read(&wal_path).unwrap();
    bytes[0] = b'X';
    std::fs::write(&wal_path, &bytes).unwrap();
    let err = Database::open(&dir).unwrap_err();
    assert!(matches!(err, TxdbError::Corrupt(_)), "got {err:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Fault injection: the log append itself fails mid-commit
// ---------------------------------------------------------------------

#[test]
fn commit_is_atomic_under_append_failure_at_every_record() {
    // A committing transaction appends [Begin, writes.., Commit] as one
    // batch. Fail the append after every possible number of records
    // written: the commit must report an error, the in-memory state must
    // roll back, and recovery from the (torn) file must agree.
    let batch_len = 5; // Begin + 3 writes + Commit
    for fail_after in 0..batch_len {
        let dir = scratch(&format!("fault-{fail_after}"));
        let mut db = open_fast(&dir);
        db.create_table(accounts_schema()).unwrap();
        db.insert("account", row![1, 10, Value::Null]).unwrap();
        db.insert("account", row![2, 20, Value::Null]).unwrap();
        let expect = observed_state(&db);

        let txn = db.txn_begin();
        let (rid1, rid2) = (rid_of(&db, 1), rid_of(&db, 2));
        db.txn_insert(txn, "account", row![3, 30, Value::Null])
            .unwrap();
        db.txn_update(txn, "account", rid1, "balance", Value::Int(0))
            .unwrap();
        db.txn_delete(txn, "account", rid2).unwrap();
        db.wal_fail_appends_after(fail_after);
        let err = db.txn_commit(txn).unwrap_err();
        assert!(matches!(err, TxdbError::Io { .. }), "got {err:?}");

        // In memory: fully rolled back, transaction gone, writes invisible.
        assert!(!db.has_active_txns());
        assert_eq!(
            observed_state(&db),
            expect,
            "fail_after={fail_after}: memory state leaked"
        );

        // On disk: whatever partial batch hit the file has no Commit
        // record, so recovery discards it.
        drop(db);
        let reopened = open_fast(&dir);
        assert_eq!(
            observed_state(&reopened),
            expect,
            "fail_after={fail_after}: partial batch visible after recovery"
        );
        // And the recovered database still takes writes.
        let mut reopened = reopened;
        reopened
            .insert("account", row![50, 5, Value::Null])
            .unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn direct_write_is_atomic_under_append_failure() {
    let dir = scratch("fault-direct");
    let mut db = open_fast(&dir);
    db.create_table(accounts_schema()).unwrap();
    db.insert("account", row![1, 10, Value::Null]).unwrap();
    let expect = observed_state(&db);

    db.wal_fail_appends_after(0);
    assert!(matches!(
        db.insert("account", row![2, 20, Value::Null]).unwrap_err(),
        TxdbError::Io { .. }
    ));
    assert_eq!(observed_state(&db), expect, "failed insert leaked");

    let rid1 = rid_of(&db, 1);
    db.wal_fail_appends_after(0);
    assert!(matches!(
        db.update("account", rid1, "balance", Value::Int(0))
            .unwrap_err(),
        TxdbError::Io { .. }
    ));
    assert_eq!(observed_state(&db), expect, "failed update leaked");

    db.wal_fail_appends_after(0);
    assert!(matches!(
        db.delete("account", rid1).unwrap_err(),
        TxdbError::Io { .. }
    ));
    assert_eq!(observed_state(&db), expect, "failed delete leaked");

    drop(db);
    let reopened = open_fast(&dir);
    assert_eq!(observed_state(&reopened), expect);
    let _ = std::fs::remove_dir_all(&dir);
}
