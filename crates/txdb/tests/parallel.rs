//! Parallel-determinism tests: the same query at `worker_threads` = 1,
//! 2, 4 and 8 must produce byte-identical results — the morsel merge
//! rule (concatenate contiguous partials in morsel order) reproduces
//! the serial ascending-RowId stream exactly, so the thread count can
//! never show through in query output. `EXPLAIN ANALYZE` actual-row
//! annotations must agree across parallel degrees too, and the root's
//! actual count must equal the result size at every degree.
//!
//! Budgets are left at `PlanOptions::default()` on purpose: under
//! `--features tight-budget` the same assertions hold with the tight
//! default budget live, covering the parallel + partitioned-degradation
//! interaction.

use cat_txdb::sql::{
    execute_select_reference, execute_select_with, explain_select_with, parse_statement,
    PlanOptions, Statement,
};
use cat_txdb::{row, Database, Value};

/// A 5000-row `item` table (multi-conjunct filter fodder, no index on
/// the filtered columns) joined by a 60-row `req` probe side — both the
/// parallel scan and the parallel hash build clear the default
/// 2×`MORSEL_ROWS` row threshold.
fn fixture() -> Database {
    let mut db = Database::new();
    cat_txdb::sql::execute_script(
        &mut db,
        "CREATE TABLE item (item_id INT PRIMARY KEY, k INT, grade FLOAT, name TEXT);
         CREATE TABLE req (req_id INT PRIMARY KEY, k INT)",
    )
    .unwrap();
    for i in 0..5000i64 {
        db.insert(
            "item",
            row![
                i,
                if i % 3 == 0 { 17 } else { i % 97 },
                (i % 50) as f64 / 5.0,
                format!("item-{}", i % 13)
            ],
        )
        .unwrap();
    }
    for i in 0..60i64 {
        db.insert("req", row![i, if i % 2 == 0 { 17 } else { i }])
            .unwrap();
    }
    db
}

fn opts(workers: usize) -> PlanOptions {
    PlanOptions {
        worker_threads: workers,
        ..PlanOptions::default()
    }
}

const QUERIES: &[&str] = &[
    // Parallel scan with the multi-conjunct filter fused into workers.
    "SELECT item_id, name FROM item WHERE grade > 2.5 AND name LIKE '%-7%' AND k <> 17",
    // Parallel hash build (5000-row build side, duplicate-heavy key).
    "SELECT req.req_id, item.item_id FROM req JOIN item ON item.k = req.k",
    // Parallel scan under aggregation + grouping.
    "SELECT name, COUNT(*), MAX(grade) FROM item WHERE k < 40 GROUP BY name ORDER BY name",
    // Parallel scan under ORDER BY ... LIMIT (bounded top-k).
    "SELECT item_id FROM item WHERE grade >= 1.0 ORDER BY grade DESC LIMIT 25",
];

/// `EXPLAIN ANALYZE` actual-row annotations, top-down.
fn analyze_row_counts(db: &Database, sql: &str, o: &PlanOptions) -> Vec<usize> {
    let Statement::Select(sel) = parse_statement(sql).unwrap() else {
        unreachable!()
    };
    explain_select_with(db, &sel, o, true)
        .unwrap()
        .rows
        .into_iter()
        .map(|mut r| {
            let Value::Text(line) = r.remove(0) else {
                panic!("non-text plan line")
            };
            let at = line
                .find("actual=")
                .unwrap_or_else(|| panic!("no actual-row annotation in `{line}`"));
            line[at + "actual=".len()..]
                .split(|c: char| !c.is_ascii_digit())
                .next()
                .unwrap()
                .parse()
                .unwrap()
        })
        .collect()
}

#[test]
fn results_are_byte_identical_across_worker_counts() {
    let db = fixture();
    for sql in QUERIES {
        let Statement::Select(sel) = parse_statement(sql).unwrap() else {
            unreachable!()
        };
        let reference = execute_select_reference(&db, &sel).unwrap();
        let serial = execute_select_with(&db, &sel, &opts(1)).unwrap();
        assert_eq!(serial, reference, "serial vs reference: {sql}");
        for workers in [2, 4, 8] {
            let parallel = execute_select_with(&db, &sel, &opts(workers)).unwrap();
            assert_eq!(parallel, serial, "{workers} workers vs serial: {sql}");
        }
    }
}

#[test]
fn analyze_row_counts_agree_across_worker_counts() {
    let db = fixture();
    for sql in QUERIES {
        let Statement::Select(sel) = parse_statement(sql).unwrap() else {
            unreachable!()
        };
        let result_len = execute_select_with(&db, &sel, &opts(1)).unwrap().rows.len();
        // Parallel degrees lower the same tree (an `Exchange` leaf), so
        // the full actual-row column must agree node for node.
        let two = analyze_row_counts(&db, sql, &opts(2));
        for workers in [4, 8] {
            assert_eq!(
                analyze_row_counts(&db, sql, &opts(workers)),
                two,
                "{workers} workers vs 2: {sql}"
            );
        }
        // The serial tree differs in shape (Scan + Filter instead of a
        // fused Exchange), but the root actual count is the result size
        // by contract at every degree.
        for workers in [1, 2, 4, 8] {
            let counts = analyze_row_counts(&db, sql, &opts(workers));
            assert_eq!(
                counts[0], result_len,
                "root actual vs result size at {workers} workers: {sql}"
            );
        }
    }
}

#[test]
fn explain_renders_the_degree_of_parallelism() {
    let db = fixture();
    let Statement::Select(sel) =
        parse_statement("SELECT item_id FROM item WHERE k <> 17 AND grade > 1.0").unwrap()
    else {
        unreachable!()
    };
    let tree: Vec<String> = explain_select_with(&db, &sel, &opts(4), false)
        .unwrap()
        .rows
        .into_iter()
        .map(|mut r| match r.remove(0) {
            Value::Text(line) => line,
            other => panic!("non-text plan cell: {other:?}"),
        })
        .collect();
    assert!(
        tree.iter()
            .any(|l| l.contains("Exchange") && l.contains("workers=4")),
        "EXPLAIN must render the parallel leaf and its degree:\n{}",
        tree.join("\n")
    );
    // Join fixture: the build side's degree shows on the join node.
    let Statement::Select(sel) =
        parse_statement("SELECT req.req_id FROM req JOIN item ON item.k = req.k").unwrap()
    else {
        unreachable!()
    };
    let tree: Vec<String> = explain_select_with(&db, &sel, &opts(4), false)
        .unwrap()
        .rows
        .into_iter()
        .map(|mut r| match r.remove(0) {
            Value::Text(line) => line,
            other => panic!("non-text plan cell: {other:?}"),
        })
        .collect();
    assert!(
        tree.iter()
            .any(|l| l.contains("BuildHashJoin") && l.contains("workers=4")),
        "EXPLAIN must render the build's parallel degree:\n{}",
        tree.join("\n")
    );
}

/// `worker_threads = 1` must lower the exact pre-parallel operators —
/// no Exchange node, no pool, today's serial code path byte for byte.
#[test]
fn one_worker_lowers_the_serial_tree() {
    let db = fixture();
    let Statement::Select(sel) =
        parse_statement("SELECT item_id FROM item WHERE k <> 17 AND grade > 1.0").unwrap()
    else {
        unreachable!()
    };
    let tree: Vec<String> = explain_select_with(&db, &sel, &opts(1), false)
        .unwrap()
        .rows
        .into_iter()
        .map(|mut r| match r.remove(0) {
            Value::Text(line) => line,
            other => panic!("non-text plan cell: {other:?}"),
        })
        .collect();
    assert!(
        tree.iter().all(|l| !l.contains("Exchange")),
        "serial plans must not contain Exchange:\n{}",
        tree.join("\n")
    );
    assert!(
        tree.iter().any(|l| l.contains("Scan [item]")),
        "serial plan lost its Scan leaf:\n{}",
        tree.join("\n")
    );
}
