//! Differential test: every generated `SELECT` must produce identical
//! results through the planned executor (multi-index AND, join
//! reordering, staged predicate pushdown, bounded top-k, tuple
//! streaming) and the naive materialize-everything reference executor.
//! Each query additionally runs under the PR 1 planner shape
//! (`PlanOptions::single_access_path()`: one access path, FROM-order
//! joins, no staging), so every optimizer generation is pinned to the
//! same semantics.
//!
//! The generator is seeded and exhaustive-ish: random schemas get random
//! hash/range indexes, random data includes NULLs, duplicates and
//! cross-type numeric values, and queries cover two- and three-table
//! joins (star- and chain-shaped, exercising both the reorder greedy and
//! its binding constraint), multi-conjunct WHERE clauses over indexed
//! columns (exercising the intersection cutoff), WHERE trees,
//! aggregation, grouping, ordering and limits. Join keys include
//! unindexed float columns with NULL and NaN on both sides and a
//! cross-type Int = Float key, so every join strategy of the execution
//! layer (index probe, build-side hash, merge over ordered indexes) is
//! exercised and tallied. Join-side single-table conjuncts over randomly
//! indexed columns make the build-side pushdown fire (tallied too), and
//! every query additionally runs under the PR 3 no-build-pushdown shape
//! and the PR 4 independence-estimator shape
//! (`PlanOptions::independence_only()`) so each frozen generation is
//! pinned against the current one. `screening.country` is fully
//! determined by `screening.city` — a correlated, randomly indexed
//! column pair the joint-statistics estimator must price (and whose
//! redundant intersection probes it must decline) without changing
//! results. An estimator-accuracy harness additionally tallies the
//! q-error of estimated base-table cardinality against actual result
//! sizes on the join-free queries, and a dedicated correlated fixture
//! asserts the joint-stats/backoff estimator strictly beats the frozen
//! independence product. The implementations share the parser, the
//! value model and the join-key exclusion rule
//! (`Value::is_excluded_join_key` — NULL/NaN never join; its behavior
//! itself is pinned by hand-written unit tests in `exec.rs`), but not
//! the planner or execution strategy code, so agreement here is strong
//! evidence the planner preserves semantics.

use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::{RngExt, SeedableRng};

use cat_txdb::sql::{
    execute, execute_select_at, execute_select_reference, execute_select_with, parse_statement,
    plan_select, JoinStrategy, PlanOptions, Statement,
};
use cat_txdb::{row, DataType, Database, TableSchema, Value};

const GENRES: &[&str] = &["Drama", "Crime", "Horror", "Comedy", "Noir", "Sci-Fi"];
const CITIES: &[&str] = &["Berlin", "Munich", "Hamburg", "Cologne", "Vienna", "Linz"];
const COUNTRIES: &[&str] = &["Germany", "Austria"];

/// The country a city belongs to — `screening.country` is fully
/// determined by `screening.city`, the correlated column pair whose joint
/// statistics the estimator must exploit (independence would price
/// `city = 'Berlin' AND country = 'Germany'` as the product of two
/// marginals when the true joint frequency is the city's own).
fn country_of(city: &Value) -> Value {
    match city {
        Value::Text(c) => Value::Text(
            match c.as_str() {
                "Vienna" | "Linz" => "Austria",
                _ => "Germany",
            }
            .to_string(),
        ),
        _ => Value::Null,
    }
}

/// A random movie/screening/review database. Row counts, index placement
/// and value skew all depend on the seed. `review` references both
/// `movie` (star-shaped second join) and `screening` (chain-shaped).
fn random_db(rng: &mut StdRng) -> Database {
    let mut db = Database::new();
    db.create_table(
        TableSchema::builder("movie")
            .column("movie_id", DataType::Int)
            .column("title", DataType::Text)
            .nullable_column("genre", DataType::Text)
            .nullable_column("rating", DataType::Float)
            .column("year", DataType::Int)
            .primary_key(&["movie_id"])
            .build()
            .unwrap(),
    )
    .unwrap();
    db.create_table(
        TableSchema::builder("screening")
            .column("screening_id", DataType::Int)
            .column("movie_id", DataType::Int)
            .nullable_column("city", DataType::Text)
            .nullable_column("country", DataType::Text)
            .column("price", DataType::Float)
            .nullable_column("rank", DataType::Float)
            .primary_key(&["screening_id"])
            .foreign_key("movie_id", "movie", "movie_id")
            .build()
            .unwrap(),
    )
    .unwrap();
    db.create_table(
        TableSchema::builder("review")
            .column("review_id", DataType::Int)
            .column("movie_id", DataType::Int)
            .column("screening_id", DataType::Int)
            .column("stars", DataType::Int)
            .primary_key(&["review_id"])
            .foreign_key("movie_id", "movie", "movie_id")
            .foreign_key("screening_id", "screening", "screening_id")
            .build()
            .unwrap(),
    )
    .unwrap();

    let n_movies = rng.random_range(1..=40i64);
    for i in 0..n_movies {
        let genre = if rng.random_bool(0.15) {
            Value::Null
        } else {
            Value::Text(GENRES.choose(rng).unwrap().to_string())
        };
        let rating = if rng.random_bool(0.2) {
            Value::Null
        } else if rng.random_bool(0.05) {
            // NaN cells: the range-probe NaN reconciliation and the
            // OrdKey total order must agree with predicate evaluation.
            Value::Float(f64::NAN)
        } else {
            Value::Float(rng.random_range(10..=100) as f64 / 10.0)
        };
        db.insert(
            "movie",
            row![
                i,
                format!("M{}", rng.random_range(0..25i64)),
                genre,
                rating,
                rng.random_range(1950..=2022i64)
            ],
        )
        .unwrap();
    }
    let n_screenings = rng.random_range(0..=60i64);
    for i in 0..n_screenings {
        let city = if rng.random_bool(0.1) {
            Value::Null
        } else {
            Value::Text(CITIES.choose(rng).unwrap().to_string())
        };
        // rank: NULL/NaN-bearing float, mostly integral so joining it
        // against the Int `review.stars` column produces real cross-type
        // (Int = Float) matches.
        let rank = if rng.random_bool(0.1) {
            Value::Null
        } else if rng.random_bool(0.05) {
            Value::Float(f64::NAN)
        } else if rng.random_bool(0.2) {
            Value::Float(rng.random_range(1..=10i64) as f64 + 0.5)
        } else {
            Value::Float(rng.random_range(1..=10i64) as f64)
        };
        // country is a pure function of city (NULL city → NULL country):
        // the strongest correlation shape, where the independence product
        // is maximally wrong.
        let country = country_of(&city);
        db.insert(
            "screening",
            row![
                i,
                rng.random_range(0..n_movies),
                city,
                country,
                rng.random_range(50..=200i64) as f64 / 10.0,
                rank
            ],
        )
        .unwrap();
    }
    // Reviews: sometimes fewer than movies (so the review join shrinks
    // the stream and the greedy reorder prefers it), sometimes more.
    if n_screenings > 0 {
        let n_reviews = rng.random_range(0..=30i64);
        for i in 0..n_reviews {
            db.insert(
                "review",
                row![
                    i,
                    rng.random_range(0..n_movies),
                    rng.random_range(0..n_screenings),
                    rng.random_range(1..=10i64)
                ],
            )
            .unwrap();
        }
    }
    // Random index placement: the planner must behave identically with
    // any subset of indexes available.
    {
        let t = db.table_mut("movie").unwrap();
        if rng.random_bool(0.5) {
            t.create_index("genre").unwrap();
        }
        if rng.random_bool(0.5) {
            t.create_range_index("rating").unwrap();
        }
        if rng.random_bool(0.3) {
            t.create_range_index("year").unwrap();
        }
    }
    {
        let t = db.table_mut("screening").unwrap();
        if rng.random_bool(0.5) {
            t.create_range_index("price").unwrap();
        }
        if rng.random_bool(0.3) {
            t.create_range_index("rank").unwrap();
        }
        // A hash index on city (~17% per value) makes join-side city
        // equalities build-side-pushdown candidates on the rank-key join.
        if rng.random_bool(0.5) {
            t.create_index("city").unwrap();
        }
        // Indexing the correlated country column too makes
        // `city = x AND country = y` a multi-index AND candidate that
        // only the joint statistics price (and decline) correctly.
        if rng.random_bool(0.5) {
            t.create_index("country").unwrap();
        }
    }
    if rng.random_bool(0.4) {
        db.table_mut("review")
            .unwrap()
            .create_index("stars")
            .unwrap();
    }
    if rng.random_bool(0.3) {
        db.table_mut("review")
            .unwrap()
            .create_range_index("stars")
            .unwrap();
    }
    db
}

/// How many joined tables a generated query has (0, 1 or 2 joins) and
/// what kind of join key it uses.
#[derive(Clone, Copy, PartialEq)]
enum JoinShape {
    None,
    Screening,
    /// movie JOIN screening JOIN review — the review join's ON side is
    /// either movie (star) or screening (chain).
    Three {
        chain: bool,
    },
    /// movie JOIN screening ON screening.rank = movie.rating — a float
    /// join key with NULL and NaN on *both* sides and no hash index on
    /// the right column (`rank` carries at most a range index), so the
    /// planner must pick `BuildHash` or `MergeRange`.
    RankKey,
    /// movie JOIN screening (FK) JOIN review ON review.stars =
    /// screening.rank — a cross-type Int = Float join key; `stars` is
    /// randomly hash- and/or range-indexed, covering every strategy.
    StarsRank,
}

/// A random WHERE conjunct/tree in SQL text form.
fn random_predicate(rng: &mut StdRng, depth: usize, shape: JoinShape) -> String {
    let joined = shape != JoinShape::None;
    let three = matches!(shape, JoinShape::Three { .. } | JoinShape::StarsRank);
    let leaf = |rng: &mut StdRng| -> String {
        // Mostly-qualified columns when a join is present, but sometimes
        // the ambiguous unqualified `movie_id` or an unknown column: both
        // paths must then agree on *whether* the error surfaces (the seed
        // raised it lazily, only when a joined row was actually evaluated).
        if joined && rng.random_bool(0.1) {
            return format!("movie_id = {}", rng.random_range(0..40i64));
        }
        if rng.random_bool(0.03) {
            return "no_such_column = 1".to_string();
        }
        let cols: &[(&str, u8)] = if three {
            &[
                ("movie.genre", 0),
                ("movie.rating", 1),
                ("movie.year", 2),
                ("screening.city", 3),
                ("screening.country", 6),
                ("screening.price", 1),
                ("review.stars", 5),
            ]
        } else if joined {
            &[
                ("movie.genre", 0),
                ("movie.rating", 1),
                ("movie.year", 2),
                ("screening.city", 3),
                ("screening.country", 6),
                ("screening.price", 1),
            ]
        } else {
            &[
                ("movie_id", 2),
                ("genre", 0),
                ("rating", 1),
                ("year", 2),
                ("title", 4),
            ]
        };
        let (col, kind) = cols.choose(rng).unwrap();
        let op = ["=", "<", "<=", ">", ">=", "<>"].choose(rng).unwrap();
        match kind {
            0 => {
                if rng.random_bool(0.2) {
                    format!(
                        "{col} IS {}NULL",
                        if rng.random_bool(0.5) { "NOT " } else { "" }
                    )
                } else if rng.random_bool(0.2) {
                    format!("{col} LIKE '%{}%'", &GENRES.choose(rng).unwrap()[..2])
                } else {
                    format!("{col} = '{}'", GENRES.choose(rng).unwrap())
                }
            }
            1 => format!("{col} {op} {}", rng.random_range(10..=200i64) as f64 / 10.0),
            2 => format!("{col} {op} {}", rng.random_range(-5..=2025i64)),
            3 => format!("{col} = '{}'", CITIES.choose(rng).unwrap()),
            5 => format!("{col} {op} {}", rng.random_range(0..=11i64)),
            6 => format!("{col} = '{}'", COUNTRIES.choose(rng).unwrap()),
            _ => format!("{col} = 'M{}'", rng.random_range(0..25i64)),
        }
    };
    if depth == 0 || rng.random_bool(0.4) {
        return leaf(rng);
    }
    match rng.random_range(0..3u8) {
        0 => format!(
            "({} AND {})",
            random_predicate(rng, depth - 1, shape),
            random_predicate(rng, depth - 1, shape)
        ),
        1 => format!(
            "({} OR {})",
            random_predicate(rng, depth - 1, shape),
            random_predicate(rng, depth - 1, shape)
        ),
        _ => format!("NOT ({})", random_predicate(rng, depth - 1, shape)),
    }
}

/// A multi-conjunct WHERE over (mostly) indexable base columns: 2–4
/// sargable leaves ANDed flat, the shape the multi-index AND planner
/// consumes. Qualified when a join is present.
fn multi_conjunct_predicate(rng: &mut StdRng, shape: JoinShape) -> String {
    let joined = shape != JoinShape::None;
    let q = |c: &str| {
        if joined {
            format!("movie.{c}")
        } else {
            c.to_string()
        }
    };
    let mut leaves: Vec<String> = Vec::new();
    let n = rng.random_range(2..=4usize);
    for _ in 0..n {
        let leaf = match rng.random_range(0..5u8) {
            0 => format!("{} = '{}'", q("genre"), GENRES.choose(rng).unwrap()),
            1 => format!(
                "{} {} {}",
                q("rating"),
                [">", ">=", "<", "<="].choose(rng).unwrap(),
                rng.random_range(10..=100) as f64 / 10.0
            ),
            2 => format!(
                "{} {} {}",
                q("year"),
                [">", ">=", "<", "<=", "="].choose(rng).unwrap(),
                rng.random_range(1950..=2022i64)
            ),
            3 => format!("{} = {}", q("movie_id"), rng.random_range(0..40i64)),
            _ => {
                if matches!(shape, JoinShape::Three { .. } | JoinShape::StarsRank) {
                    format!("review.stars >= {}", rng.random_range(1..=10i64))
                } else {
                    format!("{} = '{}'", q("genre"), GENRES.choose(rng).unwrap())
                }
            }
        };
        leaves.push(leaf);
    }
    leaves.join(" AND ")
}

/// A conjunct (or two, ANDed) referencing only a *joined* table — the
/// shape the build-side pushdown can consume when the matching index
/// exists and the selectivity estimate clears the threshold. Includes
/// bounds on the rank-key join's own key, so the clamped merge walk is
/// exercised too. `None` for join-free queries.
fn joinside_pushdown_predicate(rng: &mut StdRng, shape: JoinShape) -> Option<String> {
    let mut leaves: Vec<String> = Vec::new();
    match shape {
        JoinShape::None => return None,
        JoinShape::Screening | JoinShape::RankKey => {
            // Sometimes the explicitly correlated (matched or mismatched)
            // city+country pair: the joint-stats pricing — and the
            // redundant-probe decline — must survive on the build side
            // too.
            if rng.random_bool(0.3) {
                let city = CITIES.choose(rng).unwrap();
                let country = if rng.random_bool(0.7) {
                    let Value::Text(c) = country_of(&Value::Text(city.to_string())) else {
                        unreachable!()
                    };
                    c
                } else {
                    COUNTRIES.choose(rng).unwrap().to_string()
                };
                return Some(format!(
                    "screening.city = '{city}' AND screening.country = '{country}'"
                ));
            }
            leaves.push(format!(
                "screening.city = '{}'",
                CITIES.choose(rng).unwrap()
            ));
            leaves.push(format!(
                "screening.country = '{}'",
                COUNTRIES.choose(rng).unwrap()
            ));
            leaves.push(format!(
                "screening.price {} {}",
                ["<", "<=", ">", ">="].choose(rng).unwrap(),
                rng.random_range(50..=200i64) as f64 / 10.0
            ));
            if shape == JoinShape::RankKey {
                // A bound on the join key itself: eligible to clamp the
                // merge walk when rank carries a range index.
                leaves.push(format!(
                    "screening.rank {} {}",
                    ["<", "<=", ">", ">="].choose(rng).unwrap(),
                    rng.random_range(1..=10i64)
                ));
            }
        }
        JoinShape::Three { .. } | JoinShape::StarsRank => {
            leaves.push(format!("review.stars = {}", rng.random_range(1..=10i64)));
            leaves.push(format!(
                "review.stars {} {}",
                ["<", "<=", ">", ">="].choose(rng).unwrap(),
                rng.random_range(1..=10i64)
            ));
            leaves.push(format!(
                "screening.city = '{}'",
                CITIES.choose(rng).unwrap()
            ));
        }
    }
    let n = rng.random_range(1..=2usize);
    let mut picked: Vec<String> = Vec::new();
    for _ in 0..n {
        let leaf = leaves.choose(rng).unwrap().clone();
        if !picked.contains(&leaf) {
            picked.push(leaf);
        }
    }
    Some(picked.join(" AND "))
}

/// A random WHERE body for `shape`: multi-conjunct sargable, join-side
/// pushdown-eligible, or a general predicate tree.
fn random_where(rng: &mut StdRng, shape: JoinShape) -> String {
    if rng.random_bool(0.25) {
        if let Some(p) = joinside_pushdown_predicate(rng, shape) {
            return p;
        }
    }
    if rng.random_bool(0.35) {
        multi_conjunct_predicate(rng, shape)
    } else {
        random_predicate(rng, 2, shape)
    }
}

fn join_clause(shape: JoinShape) -> &'static str {
    match shape {
        JoinShape::None => "",
        JoinShape::Screening => " JOIN screening ON screening.movie_id = movie.movie_id",
        JoinShape::Three { chain: false } => {
            " JOIN screening ON screening.movie_id = movie.movie_id \
             JOIN review ON review.movie_id = movie.movie_id"
        }
        JoinShape::Three { chain: true } => {
            " JOIN screening ON screening.movie_id = movie.movie_id \
             JOIN review ON review.screening_id = screening.screening_id"
        }
        JoinShape::RankKey => " JOIN screening ON screening.rank = movie.rating",
        JoinShape::StarsRank => {
            " JOIN screening ON screening.movie_id = movie.movie_id \
             JOIN review ON review.stars = screening.rank"
        }
    }
}

/// A random SELECT over the movie/screening/review schema.
fn random_select(rng: &mut StdRng) -> String {
    let shape = match rng.random_range(0..12u8) {
        0..=3 => JoinShape::None,
        4..=5 => JoinShape::Screening,
        6 => JoinShape::RankKey,
        7 => JoinShape::Three { chain: false },
        8 => JoinShape::Three { chain: true },
        _ => JoinShape::StarsRank,
    };
    let joined = shape != JoinShape::None;
    let three = matches!(shape, JoinShape::Three { .. } | JoinShape::StarsRank);
    let mut sql = String::new();
    let aggregate = rng.random_bool(0.3);
    if aggregate {
        let group_col = if rng.random_bool(0.6) {
            Some(if joined { "movie.genre" } else { "genre" })
        } else {
            None
        };
        let aggs: &[&str] = if three {
            &[
                "count(*)",
                "min(screening.price)",
                "sum(review.stars)",
                "max(review.stars)",
                "avg(movie.rating)",
            ]
        } else if joined {
            &[
                "count(*)",
                "min(screening.price)",
                "max(screening.price)",
                "sum(screening.price)",
                "avg(movie.rating)",
            ]
        } else {
            &[
                "count(*)",
                "count(rating)",
                "min(rating)",
                "max(year)",
                "sum(year)",
                "avg(rating)",
            ]
        };
        let mut items: Vec<String> = Vec::new();
        if let Some(g) = group_col {
            items.push(g.to_string());
        }
        for _ in 0..rng.random_range(1..=2usize) {
            items.push(aggs.choose(rng).unwrap().to_string());
        }
        sql.push_str(&format!("SELECT {} FROM movie", items.join(", ")));
        sql.push_str(join_clause(shape));
        if rng.random_bool(0.7) {
            sql.push_str(&format!(" WHERE {}", random_where(rng, shape)));
        }
        if let Some(g) = group_col {
            sql.push_str(&format!(" GROUP BY {g}"));
            if rng.random_bool(0.5) {
                sql.push_str(&format!(" ORDER BY {g}"));
            }
            if rng.random_bool(0.3) {
                sql.push_str(&format!(" LIMIT {}", rng.random_range(0..5usize)));
            }
        }
    } else {
        let projection = if three {
            ["*", "movie.title, screening.city, review.stars"]
                .choose(rng)
                .unwrap()
                .to_string()
        } else if joined {
            ["*", "movie.title, screening.city, screening.price"]
                .choose(rng)
                .unwrap()
                .to_string()
        } else {
            ["*", "title, rating", "movie_id, year"]
                .choose(rng)
                .unwrap()
                .to_string()
        };
        sql.push_str(&format!("SELECT {projection} FROM movie"));
        sql.push_str(join_clause(shape));
        if rng.random_bool(0.8) {
            sql.push_str(&format!(" WHERE {}", random_where(rng, shape)));
        }
        if rng.random_bool(0.6) {
            let col = if three {
                ["movie.rating", "screening.price", "review.stars"]
                    .choose(rng)
                    .unwrap()
            } else if joined {
                ["movie.rating", "screening.price", "movie.year"]
                    .choose(rng)
                    .unwrap()
            } else {
                ["rating", "year", "title", "movie_id"].choose(rng).unwrap()
            };
            sql.push_str(&format!(
                " ORDER BY {col}{}",
                if rng.random_bool(0.5) { " DESC" } else { "" }
            ));
        }
        if rng.random_bool(0.5) {
            sql.push_str(&format!(" LIMIT {}", rng.random_range(0..30usize)));
        }
    }
    sql
}

/// The planner shapes the suite compares against the reference
/// executor, by matrix name: the full planner plus every frozen
/// generation. `TXDB_DIFF_SHAPE` (the CI matrix variable) restricts one
/// run to a single named shape.
const SHAPES: &[&str] = &[
    "default",
    "single_access_path",
    "per_key_joins",
    "no_build_pushdown",
    "independence_only",
    "tight_budget",
    "snapshot",
    "parallel",
    "durable",
];

fn shape_options(name: &str) -> PlanOptions {
    match name {
        "default" => PlanOptions::default(),
        "single_access_path" => PlanOptions::single_access_path(),
        "per_key_joins" => PlanOptions::per_key_joins(),
        "no_build_pushdown" => PlanOptions::no_build_pushdown(),
        "independence_only" => PlanOptions::independence_only(),
        "tight_budget" => PlanOptions::tight_budget(),
        // The PR 8 snapshot shape runs the default planner through an
        // explicit MVCC snapshot (special-cased at the call site).
        "snapshot" => PlanOptions::default(),
        // The PR 9 parallel shape: 4 workers with morsels shrunk far
        // below the production size, so the corpus's small tables still
        // split into real parallel work.
        "parallel" => PlanOptions::parallel(),
        // The PR 10 durable shape runs the default planner against a
        // twin database whose contents went through the write-ahead log
        // and crash recovery (special-cased at the call site).
        "durable" => PlanOptions::default(),
        other => panic!("TXDB_DIFF_SHAPE={other} names no planner shape (one of {SHAPES:?})"),
    }
}

/// The shapes this run compares: all of them, or just the one named by
/// `TXDB_DIFF_SHAPE` (validated eagerly so a typo fails loudly instead
/// of silently comparing nothing).
fn shapes_under_test() -> Vec<&'static str> {
    match std::env::var("TXDB_DIFF_SHAPE") {
        Ok(name) => {
            let name = SHAPES
                .iter()
                .copied()
                .find(|s| *s == name)
                .unwrap_or_else(|| {
                    panic!("TXDB_DIFF_SHAPE={name} names no planner shape (one of {SHAPES:?})")
                });
            vec![name]
        }
        Err(_) => SHAPES.to_vec(),
    }
}

/// Build the durable twin of `db` for the PR 10 `durable` shape: its
/// whole contents flow through the SQL path of a WAL-attached database
/// (every insert logged), the twin is dropped *without* a checkpoint,
/// and reopening replays the log — so every query against the twin is a
/// query against crash-recovered state. fsync stays off: the sweep
/// reopens per seed and crash *consistency* is the property under test.
/// Returns the twin and its scratch directory (caller removes it).
fn durable_twin(db: &Database, tag: u64) -> (Database, std::path::PathBuf) {
    let dir = std::env::temp_dir()
        .join("txdb-differential")
        .join(format!("{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let opts = cat_txdb::WalOptions { fsync: false };
    let mut twin = Database::open_with(&dir, opts).expect("open durable twin");
    // Seed through the typed API (SQL text cannot round-trip NaN): every
    // create_table/create_index logs a DDL record, every insert an
    // auto-commit data record. Parents before children for the FK checks.
    let mut ordered: Vec<&str> = Vec::new();
    let mut remaining: Vec<&str> = db.table_names().to_vec();
    while !remaining.is_empty() {
        remaining.retain(|t| {
            let ready = db
                .table(t)
                .unwrap()
                .schema()
                .foreign_keys()
                .iter()
                .all(|fk| fk.ref_table == *t || ordered.contains(&fk.ref_table.as_str()));
            if ready {
                ordered.push(t);
            }
            !ready
        });
    }
    for t in &ordered {
        let table = db.table(t).unwrap();
        twin.create_table(table.schema().clone()).expect("twin DDL");
        for col in table.indexed_columns() {
            // PK/unique/FK columns are auto-indexed at create_table.
            if !twin.table(t).unwrap().has_index(col) {
                twin.create_index(t, col).expect("twin index");
            }
        }
        for col in table.range_indexed_columns() {
            if !twin.table(t).unwrap().has_range_index(col) {
                twin.create_range_index(t, col).expect("twin range index");
            }
        }
        for (_, row) in table.scan() {
            twin.insert(t, row.clone()).expect("twin insert");
        }
    }
    drop(twin); // crash, not close: reopen must replay the log
    let twin =
        Database::open_with(&dir, cat_txdb::WalOptions { fsync: false }).expect("reopen twin");
    (twin, dir)
}

/// Run `sql` through the reference executor and every planner shape
/// under test — the full planner, the PR 1 single-access-path shape,
/// the PR 2 per-key-join shape, the PR 3 no-build-pushdown shape, the
/// PR 4 independence-estimator shape, the PR 6 tight-budget shape
/// (degraded, partition-where-needed execution), the PR 8 snapshot
/// shape, the PR 9 parallel shape (4 morsel workers) and — when a twin
/// is supplied — the PR 10 durable shape (the same query against a
/// database recovered from its write-ahead log); all must agree
/// (results and error-ness) — estimator changes, memory degradation,
/// intra-query parallelism and a trip through the log may flip plans,
/// never results.
fn check_all_paths_agree(
    db: &mut Database,
    durable: Option<&Database>,
    sql: &str,
    context: &str,
) -> bool {
    let stmt = parse_statement(sql)
        .unwrap_or_else(|e| panic!("generator produced unparsable SQL `{sql}`: {e}"));
    let Statement::Select(sel) = stmt else {
        unreachable!()
    };
    let reference = execute_select_reference(db, &sel);
    let outcomes: Vec<(&str, Result<cat_txdb::sql::ResultSet, cat_txdb::TxdbError>)> =
        shapes_under_test()
            .into_iter()
            .filter_map(|name| {
                let result = if name == "default" {
                    // The default shape goes through `execute` so the
                    // statement-dispatch layer is exercised too.
                    execute(db, sql).map(|r| r.rows().unwrap().clone())
                } else if name == "snapshot" {
                    // With no transactions in flight every table is
                    // vacuum-clean, so reading through an explicit
                    // snapshot must be byte-identical to the default.
                    let snap = db.snapshot();
                    execute_select_at(db, &sel, &shape_options(name), Some(&snap))
                } else if name == "durable" {
                    // Same planner, but the data made a round trip
                    // through the WAL and crash recovery. Callers whose
                    // database mutates mid-run pass no twin; the shape
                    // is covered by the main generated sweep.
                    execute_select_with(durable?, &sel, &shape_options(name))
                } else {
                    execute_select_with(db, &sel, &shape_options(name))
                };
                Some((name, result))
            })
            .collect();
    match &reference {
        Ok(r) => {
            for (name, result) in &outcomes {
                match result {
                    Ok(rs) => assert_eq!(rs, r, "{context}, query `{sql}` ({name} shape)"),
                    Err(e) => panic!(
                        "{context}, query `{sql}`: {name} shape errored ({e}) where the reference succeeded"
                    ),
                }
            }
            true
        }
        Err(_) => {
            // All paths must reject too (e.g. aggregate over text).
            for (name, result) in &outcomes {
                assert!(
                    result.is_err(),
                    "{context}, query `{sql}`: {name} shape succeeded where the reference errored"
                );
            }
            false
        }
    }
}

/// The q-error of one cardinality estimate: `max(est/actual, actual/est)`
/// with both sides floored at one row, so empty results and sub-row
/// estimates stay finite. 1.0 is a perfect estimate.
fn q_error(estimated: f64, actual: usize) -> f64 {
    let est = estimated.max(1.0);
    let act = (actual as f64).max(1.0);
    (est / act).max(act / est)
}

/// Estimated base-table cardinality vs. actual result size for a
/// join-free, non-aggregate, unlimited SELECT — the shape where the
/// result *is* the filtered base table. Returns the (estimate, actual)
/// q-error pair under the given planner options, or `None` when the
/// query does not qualify or errors.
fn base_card_q_error(db: &mut Database, sql: &str, opts: &PlanOptions) -> Option<f64> {
    let Statement::Select(sel) = parse_statement(sql).ok()? else {
        return None;
    };
    if !sel.joins.is_empty() || sel.limit.is_some() || sel.projection.has_aggregates() {
        return None;
    }
    let plan = cat_txdb::sql::plan_select_with(db, &sel, opts).ok()?;
    let actual = execute_select_with(db, &sel, opts).ok()?.rows.len();
    Some(q_error(plan.estimated_base_rows, actual))
}

#[test]
fn planned_and_reference_executors_agree_on_generated_queries() {
    let mut checked = 0usize;
    let mut three_table = 0usize;
    // How often each join strategy actually executes across the run —
    // all three must appear, or the generator stopped covering the
    // join-execution layer. `pushdowns` tallies joins whose build side
    // ran pre-filtered through its own access path.
    let (mut probes, mut hashes, mut merges) = (0usize, 0usize, 0usize);
    let mut pushdowns = 0usize;
    // Joins the tight-budget planner partitions — proves the degraded
    // build path actually executes across the byte-identical run above.
    let mut partitioned = 0usize;
    // Operators the parallel shape actually grants workers (parallel
    // scans plus parallel hash builds) — proves the morsel-driven path
    // executes across the byte-identical run, rather than every query
    // falling below the row threshold and demoting to serial.
    let mut parallel_ops = 0usize;
    // Estimator-accuracy tally: log-sum of per-query q-errors (estimated
    // base-table cardinality vs. actual result size) for the join-free
    // queries where the two are comparable.
    let (mut q_log_sum, mut q_count, mut q_worst) = (0.0f64, 0usize, 0.0f64);
    // Whether this run compares the durable shape at all (skip the twin
    // setup cost when the CI matrix pinned a different shape).
    let durable_in_run = shapes_under_test().contains(&"durable");
    let mut durable_checked = 0usize;
    for seed in 0..40u64 {
        let mut rng = StdRng::seed_from_u64(0xD1FF + seed);
        let mut db = random_db(&mut rng);
        // The read-only query sweep leaves `db` untouched, so one twin —
        // seeded through the WAL, "crashed", recovered — serves the
        // whole seed.
        let twin = durable_in_run.then(|| durable_twin(&db, seed));
        for _ in 0..50 {
            let sql = random_select(&mut rng);
            if sql.contains("JOIN review") {
                three_table += 1;
            }
            if let Statement::Select(sel) = parse_statement(&sql).unwrap() {
                if let Ok(plan) = plan_select(&db, &sel) {
                    for j in &plan.join_order {
                        match j.strategy {
                            JoinStrategy::IndexProbe => probes += 1,
                            JoinStrategy::BuildHash => hashes += 1,
                            JoinStrategy::MergeRange => merges += 1,
                        }
                    }
                    pushdowns += plan.build_pushdown_count();
                }
                if let Ok(plan) =
                    cat_txdb::sql::plan_select_with(&db, &sel, &PlanOptions::tight_budget())
                {
                    partitioned += plan.partitioned_count();
                }
                if let Ok(plan) =
                    cat_txdb::sql::plan_select_with(&db, &sel, &PlanOptions::parallel())
                {
                    parallel_ops += plan.parallel_count();
                }
            }
            if let Some(q) = base_card_q_error(&mut db, &sql, &PlanOptions::default()) {
                q_log_sum += q.ln();
                q_count += 1;
                q_worst = q_worst.max(q);
            }
            if check_all_paths_agree(
                &mut db,
                twin.as_ref().map(|(t, _)| t),
                &sql,
                &format!("seed {seed}"),
            ) {
                checked += 1;
                if durable_in_run {
                    durable_checked += 1;
                }
            }
        }
        if let Some((twin, dir)) = twin {
            drop(twin);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
    assert!(
        checked > 1500,
        "only {checked} queries compared — generator degenerated"
    );
    assert!(
        !durable_in_run || durable_checked > 1500,
        "only {durable_checked} queries compared against recovered-from-WAL state"
    );
    assert!(
        three_table > 200,
        "only {three_table} three-table joins generated — generator degenerated"
    );
    assert!(
        probes > 100 && hashes > 100 && merges > 0,
        "join strategies under-covered: probe {probes}, hash {hashes}, merge {merges}"
    );
    println!(
        "strategy tally: probe {probes}, hash {hashes}, merge {merges}, \
         pushdown {pushdowns}, partitioned {partitioned}, parallel {parallel_ops}"
    );
    assert!(
        pushdowns > 0,
        "build-side pushdown never executed — generator stopped covering it"
    );
    assert!(
        partitioned > 0,
        "the tight-budget shape never partitioned a build — degradation path uncovered"
    );
    assert!(
        parallel_ops > 0,
        "the parallel shape never granted an operator workers — morsel path uncovered"
    );
    let q_geo = (q_log_sum / q_count.max(1) as f64).exp();
    println!("estimator tally: {q_count} join-free queries, geo-mean q-error {q_geo:.2}, worst {q_worst:.1}");
    assert!(
        q_count > 150,
        "only {q_count} queries fed the estimator-accuracy tally"
    );
    assert!(
        q_geo < 10.0,
        "geo-mean q-error degenerated: {q_geo:.2} over {q_count} queries"
    );
}

/// On the correlated city ↔ country fixture, the joint-stats/backoff
/// estimator's base-cardinality q-error must be strictly better than the
/// frozen PR 4 independence product — the acceptance bar of the
/// correlation tentpole. Covers matched pairs (joint frequency ≫
/// product), contradictory pairs (joint ≈ 0 ≪ product) and the NULL-city
/// rows (fill-rate scaling).
#[test]
fn correlated_fixture_q_error_beats_independence() {
    let mut rng = StdRng::seed_from_u64(0xC0FF);
    let mut db = random_db(&mut rng);
    // Deterministic bulk rows so the screening table is large enough for
    // stable statistics: every city equally common, country derived.
    for i in 1000..3000i64 {
        let city = Value::Text(CITIES[(i % 6) as usize].to_string());
        let country = country_of(&city);
        db.insert(
            "screening",
            row![i, 0, city, country, 10.0 + (i % 7) as f64, 1.0],
        )
        .unwrap();
    }
    {
        let t = db.table_mut("screening").unwrap();
        t.create_index("city").ok();
        t.create_index("country").ok();
    }
    let (mut corr_log, mut indep_log, mut n) = (0.0f64, 0.0f64, 0usize);
    for city in CITIES {
        for country in COUNTRIES {
            let sql = format!(
                "SELECT screening_id FROM screening \
                 WHERE city = '{city}' AND country = '{country}'"
            );
            let corr = base_card_q_error(&mut db, &sql, &PlanOptions::default())
                .expect("join-free query must qualify");
            let indep = base_card_q_error(&mut db, &sql, &PlanOptions::independence_only())
                .expect("join-free query must qualify");
            corr_log += corr.ln();
            indep_log += indep.ln();
            n += 1;
        }
    }
    let (corr_geo, indep_geo) = ((corr_log / n as f64).exp(), (indep_log / n as f64).exp());
    println!(
        "correlated fixture over {n} queries: geo-mean q-error {corr_geo:.2} \
         (joint stats/backoff) vs {indep_geo:.2} (independence)"
    );
    assert!(
        corr_geo < indep_geo,
        "correlation-aware estimator must strictly beat independence: \
         {corr_geo:.3} vs {indep_geo:.3}"
    );
    // The matched pairs are priced (nearly) exactly from the joint MCVs.
    assert!(
        corr_geo < 1.5,
        "joint stats should make the fixture nearly exact, got {corr_geo:.3}"
    );
}

/// Mutating between queries must keep the paths agreeing even while the
/// statistics cache serves bounded-stale stats (guards both the version
/// check and the staleness bound: plans may be priced wrong, results may
/// not).
#[test]
fn agreement_survives_interleaved_writes() {
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    let mut db = random_db(&mut rng);
    for i in 0..200 {
        if rng.random_bool(0.3) {
            let id = 1000 + i as i64;
            db.insert(
                "movie",
                row![
                    id,
                    format!("M{}", id % 25),
                    GENRES.choose(&mut rng).unwrap().to_string(),
                    rng.random_range(10..=100) as f64 / 10.0,
                    2000
                ],
            )
            .unwrap();
        }
        let sql = random_select(&mut rng);
        // No durable twin here: the database mutates between queries and
        // the twin would go stale. The generated sweep covers the shape.
        check_all_paths_agree(&mut db, None, &sql, "interleaved");
    }
}

/// Skewed hot-key fixture: one join key holds ~50% of a 10k-row build
/// side. Under a budget far below the in-place build-map footprint the
/// planner must partition the build, pin the hot key on the resident
/// path, and still produce byte-identical results — across plain joins,
/// aggregation and ordering shapes.
#[test]
fn skewed_hot_key_join_degrades_identically_under_budget() {
    let mut db = Database::new();
    db.create_table(
        TableSchema::builder("probe")
            .column("p_id", DataType::Int)
            .column("k", DataType::Int)
            .primary_key(&["p_id"])
            .build()
            .unwrap(),
    )
    .unwrap();
    db.create_table(
        TableSchema::builder("build")
            .column("b_id", DataType::Int)
            .column("k", DataType::Int)
            .column("grp", DataType::Int)
            .primary_key(&["b_id"])
            .build()
            .unwrap(),
    )
    .unwrap();
    let mut rng = StdRng::seed_from_u64(0x5EED);
    for i in 0..10_000i64 {
        let k = if rng.random_bool(0.5) { 42 } else { i };
        db.insert("build", row![i, k, i % 7]).unwrap();
    }
    for i in 0..60i64 {
        let k = match i % 4 {
            0 => 42,         // hot
            1 => i,          // maybe-tail
            2 => 20_000 + i, // guaranteed miss
            _ => 9_999,      // cold tail probe
        };
        db.insert("probe", row![i, k]).unwrap();
    }
    let budget = PlanOptions {
        memory_budget: Some(256 * 1024),
        ..PlanOptions::default()
    };
    let unbudgeted = PlanOptions {
        memory_budget: None,
        ..PlanOptions::default()
    };
    let mut partitioned = 0usize;
    for sql in [
        "SELECT probe.p_id, build.b_id FROM probe JOIN build ON build.k = probe.k",
        "SELECT build.grp, COUNT(*) FROM probe JOIN build ON build.k = probe.k GROUP BY build.grp",
        "SELECT probe.p_id FROM probe JOIN build ON build.k = probe.k ORDER BY build.b_id DESC LIMIT 25",
    ] {
        let Statement::Select(sel) = parse_statement(sql).unwrap() else {
            unreachable!()
        };
        let plan = cat_txdb::sql::plan_select_with(&db, &sel, &budget).unwrap();
        partitioned += plan.partitioned_count();
        if plan.partitioned_count() > 0 {
            assert!(
                plan.join_order
                    .iter()
                    .any(|j| j.hot_keys.contains(&Value::Int(42))),
                "hot key missing from partitioned plan: {}",
                plan.describe()
            );
        }
        let degraded = execute_select_with(&db, &sel, &budget).unwrap();
        let full = execute_select_with(&db, &sel, &unbudgeted).unwrap();
        let reference = execute_select_reference(&db, &sel).unwrap();
        assert_eq!(degraded, reference, "budgeted vs reference: {sql}");
        assert_eq!(full, reference, "unbudgeted vs reference: {sql}");
    }
    assert!(
        partitioned > 0,
        "the fixture never exercised the partitioned build"
    );
}
