//! Differential test: every generated `SELECT` must produce identical
//! results through the planned executor (index selection, predicate
//! pushdown, bounded top-k, tuple streaming) and the naive
//! materialize-everything reference executor.
//!
//! The generator is seeded and exhaustive-ish: random schemas get random
//! hash/range indexes, random data includes NULLs, duplicates and
//! cross-type numeric values, and queries cover joins, WHERE trees,
//! aggregation, grouping, ordering and limits. Both implementations share
//! only the parser and the value model, so agreement here is strong
//! evidence the planner preserves semantics.

use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::{RngExt, SeedableRng};

use cat_txdb::sql::{execute, execute_select_reference, parse_statement, Statement};
use cat_txdb::{row, DataType, Database, TableSchema, Value};

const GENRES: &[&str] = &["Drama", "Crime", "Horror", "Comedy", "Noir", "Sci-Fi"];
const CITIES: &[&str] = &["Berlin", "Munich", "Hamburg", "Cologne"];

/// A random movie/screening database. Row counts, index placement and
/// value skew all depend on the seed.
fn random_db(rng: &mut StdRng) -> Database {
    let mut db = Database::new();
    db.create_table(
        TableSchema::builder("movie")
            .column("movie_id", DataType::Int)
            .column("title", DataType::Text)
            .nullable_column("genre", DataType::Text)
            .nullable_column("rating", DataType::Float)
            .column("year", DataType::Int)
            .primary_key(&["movie_id"])
            .build()
            .unwrap(),
    )
    .unwrap();
    db.create_table(
        TableSchema::builder("screening")
            .column("screening_id", DataType::Int)
            .column("movie_id", DataType::Int)
            .nullable_column("city", DataType::Text)
            .column("price", DataType::Float)
            .primary_key(&["screening_id"])
            .foreign_key("movie_id", "movie", "movie_id")
            .build()
            .unwrap(),
    )
    .unwrap();

    let n_movies = rng.random_range(1..=40i64);
    for i in 0..n_movies {
        let genre = if rng.random_bool(0.15) {
            Value::Null
        } else {
            Value::Text(GENRES.choose(rng).unwrap().to_string())
        };
        let rating = if rng.random_bool(0.2) {
            Value::Null
        } else {
            Value::Float(rng.random_range(10..=100) as f64 / 10.0)
        };
        db.insert(
            "movie",
            row![
                i,
                format!("M{}", rng.random_range(0..25i64)),
                genre,
                rating,
                rng.random_range(1950..=2022i64)
            ],
        )
        .unwrap();
    }
    let n_screenings = rng.random_range(0..=60i64);
    for i in 0..n_screenings {
        let city = if rng.random_bool(0.1) {
            Value::Null
        } else {
            Value::Text(CITIES.choose(rng).unwrap().to_string())
        };
        db.insert(
            "screening",
            row![
                i,
                rng.random_range(0..n_movies),
                city,
                rng.random_range(50..=200i64) as f64 / 10.0
            ],
        )
        .unwrap();
    }
    // Random index placement: the planner must behave identically with
    // any subset of indexes available.
    {
        let t = db.table_mut("movie").unwrap();
        if rng.random_bool(0.5) {
            t.create_index("genre").unwrap();
        }
        if rng.random_bool(0.5) {
            t.create_range_index("rating").unwrap();
        }
        if rng.random_bool(0.3) {
            t.create_range_index("year").unwrap();
        }
    }
    if rng.random_bool(0.5) {
        db.table_mut("screening")
            .unwrap()
            .create_range_index("price")
            .unwrap();
    }
    db
}

/// A random WHERE conjunct/tree in SQL text form.
fn random_predicate(rng: &mut StdRng, depth: usize, joined: bool) -> String {
    let leaf = |rng: &mut StdRng| -> String {
        // Mostly-qualified columns when a join is present, but sometimes
        // the ambiguous unqualified `movie_id` or an unknown column: both
        // paths must then agree on *whether* the error surfaces (the seed
        // raised it lazily, only when a joined row was actually evaluated).
        if joined && rng.random_bool(0.1) {
            return format!("movie_id = {}", rng.random_range(0..40i64));
        }
        if rng.random_bool(0.03) {
            return "no_such_column = 1".to_string();
        }
        let cols: &[(&str, u8)] = if joined {
            &[
                ("movie.genre", 0),
                ("movie.rating", 1),
                ("movie.year", 2),
                ("screening.city", 3),
                ("screening.price", 1),
            ]
        } else {
            &[
                ("movie_id", 2),
                ("genre", 0),
                ("rating", 1),
                ("year", 2),
                ("title", 4),
            ]
        };
        let (col, kind) = cols.choose(rng).unwrap();
        let op = ["=", "<", "<=", ">", ">=", "<>"].choose(rng).unwrap();
        match kind {
            0 => {
                if rng.random_bool(0.2) {
                    format!(
                        "{col} IS {}NULL",
                        if rng.random_bool(0.5) { "NOT " } else { "" }
                    )
                } else if rng.random_bool(0.2) {
                    format!("{col} LIKE '%{}%'", &GENRES.choose(rng).unwrap()[..2])
                } else {
                    format!("{col} = '{}'", GENRES.choose(rng).unwrap())
                }
            }
            1 => format!("{col} {op} {}", rng.random_range(10..=200i64) as f64 / 10.0),
            2 => format!("{col} {op} {}", rng.random_range(-5..=2025i64)),
            3 => format!("{col} = '{}'", CITIES.choose(rng).unwrap()),
            _ => format!("{col} = 'M{}'", rng.random_range(0..25i64)),
        }
    };
    if depth == 0 || rng.random_bool(0.4) {
        return leaf(rng);
    }
    match rng.random_range(0..3u8) {
        0 => format!(
            "({} AND {})",
            random_predicate(rng, depth - 1, joined),
            random_predicate(rng, depth - 1, joined)
        ),
        1 => format!(
            "({} OR {})",
            random_predicate(rng, depth - 1, joined),
            random_predicate(rng, depth - 1, joined)
        ),
        _ => format!("NOT ({})", random_predicate(rng, depth - 1, joined)),
    }
}

/// A random SELECT over the movie/screening schema.
fn random_select(rng: &mut StdRng) -> String {
    let joined = rng.random_bool(0.35);
    let mut sql = String::new();
    let aggregate = rng.random_bool(0.3);
    if aggregate {
        let group_col = if rng.random_bool(0.6) {
            Some(if joined { "movie.genre" } else { "genre" })
        } else {
            None
        };
        let aggs: &[&str] = if joined {
            &[
                "count(*)",
                "min(screening.price)",
                "max(screening.price)",
                "sum(screening.price)",
                "avg(movie.rating)",
            ]
        } else {
            &[
                "count(*)",
                "count(rating)",
                "min(rating)",
                "max(year)",
                "sum(year)",
                "avg(rating)",
            ]
        };
        let mut items: Vec<String> = Vec::new();
        if let Some(g) = group_col {
            items.push(g.to_string());
        }
        for _ in 0..rng.random_range(1..=2usize) {
            items.push(aggs.choose(rng).unwrap().to_string());
        }
        sql.push_str(&format!("SELECT {} FROM movie", items.join(", ")));
        if joined {
            sql.push_str(" JOIN screening ON screening.movie_id = movie.movie_id");
        }
        if rng.random_bool(0.7) {
            sql.push_str(&format!(" WHERE {}", random_predicate(rng, 2, joined)));
        }
        if let Some(g) = group_col {
            sql.push_str(&format!(" GROUP BY {g}"));
            if rng.random_bool(0.5) {
                sql.push_str(&format!(" ORDER BY {g}"));
            }
            if rng.random_bool(0.3) {
                sql.push_str(&format!(" LIMIT {}", rng.random_range(0..5usize)));
            }
        }
    } else {
        let projection = if joined {
            ["*", "movie.title, screening.city, screening.price"]
                .choose(rng)
                .unwrap()
                .to_string()
        } else {
            ["*", "title, rating", "movie_id, year"]
                .choose(rng)
                .unwrap()
                .to_string()
        };
        sql.push_str(&format!("SELECT {projection} FROM movie"));
        if joined {
            sql.push_str(" JOIN screening ON screening.movie_id = movie.movie_id");
        }
        if rng.random_bool(0.8) {
            sql.push_str(&format!(" WHERE {}", random_predicate(rng, 2, joined)));
        }
        if rng.random_bool(0.6) {
            let col = if joined {
                ["movie.rating", "screening.price", "movie.year"]
                    .choose(rng)
                    .unwrap()
            } else {
                ["rating", "year", "title", "movie_id"].choose(rng).unwrap()
            };
            sql.push_str(&format!(
                " ORDER BY {col}{}",
                if rng.random_bool(0.5) { " DESC" } else { "" }
            ));
        }
        if rng.random_bool(0.5) {
            sql.push_str(&format!(" LIMIT {}", rng.random_range(0..30usize)));
        }
    }
    sql
}

#[test]
fn planned_and_reference_executors_agree_on_generated_queries() {
    let mut checked = 0usize;
    for seed in 0..40u64 {
        let mut rng = StdRng::seed_from_u64(0xD1FF + seed);
        let mut db = random_db(&mut rng);
        for _ in 0..50 {
            let sql = random_select(&mut rng);
            let stmt = parse_statement(&sql)
                .unwrap_or_else(|e| panic!("generator produced unparsable SQL `{sql}`: {e}"));
            let Statement::Select(sel) = stmt else {
                unreachable!()
            };
            let reference = execute_select_reference(&db, &sel);
            let planned = execute(&mut db, &sql).map(|r| r.rows().unwrap().clone());
            match (planned, reference) {
                (Ok(p), Ok(r)) => {
                    assert_eq!(p, r, "seed {seed}, query `{sql}`");
                    checked += 1;
                }
                (Err(_), Err(_)) => {
                    // Both paths reject (e.g. aggregate over text): fine.
                }
                (p, r) => panic!(
                    "seed {seed}, query `{sql}`: one path errored — planned {:?}, reference {:?}",
                    p.map(|_| "ok").map_err(|e| e.to_string()),
                    r.map(|_| "ok").map_err(|e| e.to_string()),
                ),
            }
        }
    }
    assert!(
        checked > 1500,
        "only {checked} queries compared — generator degenerated"
    );
}

/// Mutating between queries must invalidate cached statistics and keep the
/// paths agreeing (guards the version-check in the stats cache).
#[test]
fn agreement_survives_interleaved_writes() {
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    let mut db = random_db(&mut rng);
    for i in 0..200 {
        if rng.random_bool(0.3) {
            let id = 1000 + i as i64;
            db.insert(
                "movie",
                row![
                    id,
                    format!("M{}", id % 25),
                    GENRES.choose(&mut rng).unwrap().to_string(),
                    rng.random_range(10..=100) as f64 / 10.0,
                    2000
                ],
            )
            .unwrap();
        }
        let sql = random_select(&mut rng);
        let Statement::Select(sel) = parse_statement(&sql).unwrap() else {
            unreachable!()
        };
        let reference = execute_select_reference(&db, &sel);
        let planned = execute(&mut db, &sql).map(|r| r.rows().unwrap().clone());
        match (planned, reference) {
            (Ok(p), Ok(r)) => assert_eq!(p, r, "query `{sql}`"),
            (Err(_), Err(_)) => {}
            (p, r) => panic!(
                "query `{sql}`: one path errored — planned {:?}, reference {:?}",
                p.map(|_| "ok").map_err(|e| e.to_string()),
                r.map(|_| "ok").map_err(|e| e.to_string()),
            ),
        }
    }
}
