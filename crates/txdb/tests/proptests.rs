//! Property-based tests for the txdb engine: value codec round-trips,
//! predicate algebra laws, transaction atomicity and index consistency.

use proptest::prelude::*;

use cat_txdb::{
    entropy_of_counts, row, CmpOp, DataType, Database, Date, Predicate, Row, TableSchema, Value,
};

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Int),
        any::<f64>()
            .prop_filter("finite", |x| x.is_finite())
            .prop_map(Value::Float),
        "[a-zA-Z0-9 '_-]{0,24}".prop_map(Value::Text),
        any::<bool>().prop_map(Value::Bool),
        (1970i32..2100, 1u8..=12, 1u8..=28)
            .prop_map(|(y, m, d)| Value::Date(Date::new(y, m, d).unwrap())),
    ]
}

proptest! {
    /// Rendering a value and re-parsing it as its own type is the identity
    /// (for non-null values; text is trimmed on parse so we pre-trim).
    #[test]
    fn value_render_parse_roundtrip(v in arb_value()) {
        if let Some(ty) = v.data_type() {
            let rendered = v.render();
            if ty == DataType::Text {
                let trimmed = rendered.trim();
                // "null" deliberately parses as NULL, so skip that collision.
                prop_assume!(!trimmed.eq_ignore_ascii_case("null"));
                let back = Value::parse_as(ty, &rendered).unwrap();
                prop_assert_eq!(back, Value::Text(trimmed.to_string()));
            } else if ty == DataType::Float {
                let back = Value::parse_as(ty, &rendered).unwrap();
                let (Some(a), Some(b)) = (v.as_float(), back.as_float()) else {
                    return Err(TestCaseError::fail("float extract"));
                };
                prop_assert!((a - b).abs() <= a.abs() * 1e-12 + 1e-12);
            } else {
                let back = Value::parse_as(ty, &rendered).unwrap();
                prop_assert_eq!(back, v);
            }
        }
    }

    /// Value equality implies equal hashes.
    #[test]
    fn value_eq_implies_hash_eq(a in arb_value(), b in arb_value()) {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        fn h(v: &Value) -> u64 {
            let mut s = DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        }
        if a == b {
            prop_assert_eq!(h(&a), h(&b));
        }
    }

    /// Date arithmetic: plus_days is consistent with day_number.
    #[test]
    fn date_plus_days_consistent(y in 1900i32..2100, m in 1u8..=12, d in 1u8..=28, delta in -50_000i64..50_000) {
        let date = Date::new(y, m, d).unwrap();
        let shifted = date.plus_days(delta);
        prop_assert_eq!(shifted.day_number() - date.day_number(), delta);
    }

    /// Double negation is the identity on predicate evaluation.
    #[test]
    fn predicate_double_negation(x in any::<i64>(), threshold in any::<i64>()) {
        let schema = TableSchema::builder("t")
            .column("a", DataType::Int)
            .build()
            .unwrap();
        let r = row![x];
        let p = Predicate::cmp("a", CmpOp::Lt, threshold);
        let direct = p.eval(&schema, &r).unwrap();
        let doubled = p.not().not().eval(&schema, &r).unwrap();
        prop_assert_eq!(direct, doubled);
    }

    /// De Morgan: NOT (a AND b) == (NOT a) OR (NOT b).
    #[test]
    fn predicate_de_morgan(x in -20i64..20, lo in -20i64..20, hi in -20i64..20) {
        let schema = TableSchema::builder("t")
            .column("a", DataType::Int)
            .build()
            .unwrap();
        let r = row![x];
        let a = Predicate::cmp("a", CmpOp::Ge, lo);
        let b = Predicate::cmp("a", CmpOp::Le, hi);
        let lhs = a.clone().and(b.clone()).not().eval(&schema, &r).unwrap();
        let rhs = a.not().or(b.not()).eval(&schema, &r).unwrap();
        prop_assert_eq!(lhs, rhs);
    }

    /// Entropy bounds: 0 <= H <= log2(number of classes).
    #[test]
    fn entropy_bounds(counts in proptest::collection::vec(1usize..1000, 1..40)) {
        let h = entropy_of_counts(counts.clone());
        prop_assert!(h >= -1e-12);
        prop_assert!(h <= (counts.len() as f64).log2() + 1e-9);
    }
}

/// A random sequence of operations inside an aborted transaction leaves the
/// database byte-identical (modulo version counters) to its prior state.
#[derive(Debug, Clone)]
enum Op {
    Insert(i64, String),
    Delete(i64),
    Update(i64, String),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0i64..50, "[a-z]{1,8}").prop_map(|(k, s)| Op::Insert(k, s)),
        (0i64..50).prop_map(Op::Delete),
        (0i64..50, "[a-z]{1,8}").prop_map(|(k, s)| Op::Update(k, s)),
    ]
}

fn snapshot(db: &Database) -> Vec<(i64, String)> {
    let mut rows: Vec<(i64, String)> = db
        .table("t")
        .unwrap()
        .scan()
        .map(|(_, r)| {
            (
                r.get(0).unwrap().as_int().unwrap(),
                r.get(1).unwrap().as_text().unwrap().to_string(),
            )
        })
        .collect();
    rows.sort();
    rows
}

fn seed_db(initial: &[(i64, String)]) -> Database {
    let mut db = Database::new();
    db.create_table(
        TableSchema::builder("t")
            .column("id", DataType::Int)
            .column("name", DataType::Text)
            .primary_key(&["id"])
            .build()
            .unwrap(),
    )
    .unwrap();
    for (k, s) in initial {
        let _ = db.insert("t", Row::new(vec![Value::Int(*k), Value::Text(s.clone())]));
    }
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Atomicity: rollback restores the exact pre-transaction state even
    /// when individual operations inside the transaction fail.
    #[test]
    fn aborted_transaction_is_invisible(
        initial in proptest::collection::vec((0i64..50, "[a-z]{1,8}"), 0..20),
        ops in proptest::collection::vec(arb_op(), 1..30),
    ) {
        let mut db = seed_db(&initial);
        let before = snapshot(&db);
        {
            let mut txn = db.begin();
            for op in &ops {
                match op {
                    Op::Insert(k, s) => {
                        let _ = txn.insert("t", Row::new(vec![Value::Int(*k), Value::Text(s.clone())]));
                    }
                    Op::Delete(k) => {
                        let rids: Vec<_> = txn
                            .select("t", &Predicate::eq("id", *k))
                            .unwrap()
                            .into_iter()
                            .map(|(r, _)| r)
                            .collect();
                        for rid in rids {
                            let _ = txn.delete("t", rid);
                        }
                    }
                    Op::Update(k, s) => {
                        let rids: Vec<_> = txn
                            .select("t", &Predicate::eq("id", *k))
                            .unwrap()
                            .into_iter()
                            .map(|(r, _)| r)
                            .collect();
                        for rid in rids {
                            let _ = txn.update("t", rid, "name", Value::Text(s.clone()));
                        }
                    }
                }
            }
            // txn dropped without commit -> rollback
        }
        prop_assert_eq!(snapshot(&db), before);
    }

    /// Committed transactions match applying the same ops directly.
    #[test]
    fn committed_transaction_equals_direct_application(
        initial in proptest::collection::vec((0i64..50, "[a-z]{1,8}"), 0..20),
        ops in proptest::collection::vec(arb_op(), 1..30),
    ) {
        let mut tx_db = seed_db(&initial);
        let mut direct_db = seed_db(&initial);

        let mut txn = tx_db.begin();
        for op in &ops {
            match op {
                Op::Insert(k, s) => {
                    let _ = txn.insert("t", Row::new(vec![Value::Int(*k), Value::Text(s.clone())]));
                }
                Op::Delete(k) => {
                    let rids: Vec<_> = txn
                        .select("t", &Predicate::eq("id", *k))
                        .unwrap()
                        .into_iter().map(|(r, _)| r).collect();
                    for rid in rids { let _ = txn.delete("t", rid); }
                }
                Op::Update(k, s) => {
                    let rids: Vec<_> = txn
                        .select("t", &Predicate::eq("id", *k))
                        .unwrap()
                        .into_iter().map(|(r, _)| r).collect();
                    for rid in rids { let _ = txn.update("t", rid, "name", Value::Text(s.clone())); }
                }
            }
        }
        txn.commit();

        for op in &ops {
            match op {
                Op::Insert(k, s) => {
                    let _ = direct_db.insert("t", Row::new(vec![Value::Int(*k), Value::Text(s.clone())]));
                }
                Op::Delete(k) => {
                    let rids: Vec<_> = direct_db
                        .select("t", &Predicate::eq("id", *k))
                        .unwrap()
                        .into_iter().map(|(r, _)| r).collect();
                    for rid in rids { let _ = direct_db.delete("t", rid); }
                }
                Op::Update(k, s) => {
                    let rids: Vec<_> = direct_db
                        .select("t", &Predicate::eq("id", *k))
                        .unwrap()
                        .into_iter().map(|(r, _)| r).collect();
                    for rid in rids { let _ = direct_db.update("t", rid, "name", Value::Text(s.clone())); }
                }
            }
        }
        prop_assert_eq!(snapshot(&tx_db), snapshot(&direct_db));
    }

    /// Index lookups agree with predicate scans after arbitrary mutations.
    #[test]
    fn index_agrees_with_scan(
        ops in proptest::collection::vec(arb_op(), 1..60),
        probe in 0i64..50,
    ) {
        let mut db = Database::new();
        db.create_table(
            TableSchema::builder("t")
                .column("id", DataType::Int)
                .column("name", DataType::Text)
                .primary_key(&["id"])
                .build()
                .unwrap(),
        )
        .unwrap();
        db.table_mut("t").unwrap().create_index("name").unwrap();
        for op in &ops {
            match op {
                Op::Insert(k, s) => {
                    let _ = db.insert("t", Row::new(vec![Value::Int(*k), Value::Text(s.clone())]));
                }
                Op::Delete(k) => {
                    let rids: Vec<_> = db
                        .select("t", &Predicate::eq("id", *k))
                        .unwrap()
                        .into_iter().map(|(r, _)| r).collect();
                    for rid in rids { let _ = db.delete("t", rid); }
                }
                Op::Update(k, s) => {
                    let rids: Vec<_> = db
                        .select("t", &Predicate::eq("id", *k))
                        .unwrap()
                        .into_iter().map(|(r, _)| r).collect();
                    for rid in rids { let _ = db.update("t", rid, "name", Value::Text(s.clone())); }
                }
            }
        }
        // Probe by id (pk index) and by a name value that may or may not exist.
        let t = db.table("t").unwrap();
        let via_idx = {
            let mut v = t.lookup("id", &Value::Int(probe)).unwrap();
            v.sort();
            v
        };
        let via_scan: Vec<_> = t
            .scan()
            .filter(|(_, r)| r.get(0) == Some(&Value::Int(probe)))
            .map(|(rid, _)| rid)
            .collect();
        prop_assert_eq!(via_idx, via_scan);
    }
}
