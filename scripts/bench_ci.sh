#!/usr/bin/env bash
# CI bench harness: run the planner bench suite and apply the 25%
# regression gates against the committed baselines.
#
# Usage: scripts/bench_ci.sh <prev_pr> <cur_pr>
#   e.g. scripts/bench_ci.sh 6 7
#
# The bench run rewrites BENCH_PR<cur_pr>.json in place, so the committed
# copy (the authoritative baseline) is stashed first and both gates run
# against the fresh numbers:
#   1. continuity: the previous PR's committed baseline vs the fresh run
#      — every gated group must survive the current changes within the
#      gate;
#   2. self: the stashed committed baseline vs the fresh run — the
#      committed numbers must be reproducible on the CI machine.

set -euo pipefail

prev_pr=${1:?usage: bench_ci.sh <prev_pr> <cur_pr>}
cur_pr=${2:?usage: bench_ci.sh <prev_pr> <cur_pr>}
prev="BENCH_PR${prev_pr}.json"
cur="BENCH_PR${cur_pr}.json"
stash=$(mktemp -t bench_baseline_XXXXXX.json)

# The gated shared groups — --require keeps renamed or added benchmarks
# from silently dropping out of the gated set.
require=(
  --require correlated_and_10k
  --require join_pushdown_10k
  --require join_unindexed_hash_10k
  --require join_merge_range_10k
  --require planner_join3_award_5k
  --require join_skew_hotkey_10k
  --require join_partitioned_budget_10k
  --require mvcc_visibility_scan_10k
  --require parallel_scan_10k
  --require parallel_build_hash_10k
  --require mixed_read_write_2k
)
# Groups new in the current PR have no entry in the previous baseline,
# so they are gated only on the self comparison below.
require_self=(
  "${require[@]}"
  --require wal_commit_2k
  --require recovery_replay_10k
)

cp "$cur" "$stash"
cargo bench -p cat-bench --bench planner

rustc --edition 2021 -O scripts/bench_compare.rs -o /tmp/bench_compare
/tmp/bench_compare "${require[@]}" "$prev" "$cur"
/tmp/bench_compare "${require_self[@]}" "$stash" "$cur"
