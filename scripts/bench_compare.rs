//! Bench-regression gate: diff a fresh `BENCH_PR<n>.json` against a
//! committed baseline and fail on regressions.
//!
//! Standalone — compile with plain rustc (no cargo, no dependencies):
//!
//! ```sh
//! rustc --edition 2021 -O scripts/bench_compare.rs -o /tmp/bench_compare
//! /tmp/bench_compare BENCH_PR1.json BENCH_PR2.json
//! ```
//!
//! Raw medians are not comparable across machines (the committed baseline
//! was produced on a developer box, the candidate on a CI runner), so the
//! gate compares the *machine-normalized* median of each benchmark group:
//! `after_median_ns / before_median_ns` — the planned path's median
//! relative to the naive/previous-generation baseline measured *in the
//! same run on the same machine*. A group regresses when its normalized
//! median grows by more than the threshold (default 25%) over the
//! baseline file's normalized median. Groups present in only one file are
//! reported but not gated; zero shared groups is itself a failure (a
//! rename must update the baseline deliberately, not silently disable
//! the gate).
//!
//! Known blind spot of the normalized metric: a change that slows (or
//! speeds up) the *before* reference path shifts the denominator and can
//! mask — or falsely flag — a change in the planned path. PRs that touch
//! the reference executor should re-baseline (commit a fresh
//! `BENCH_PR<n>.json` from the same machine as the previous one, or run
//! with `--absolute` locally) rather than trust the ratio alone.
//!
//! Pass `--max-regression-pct <n>` to change the threshold, `--absolute`
//! to additionally gate the raw `after_median_ns` (only meaningful when
//! both files come from the same machine), and `--require <group>`
//! (repeatable) to fail unless the named group is actually part of the
//! gated shared set — so a renamed or newly added benchmark cannot
//! silently drop out of the comparison as "reported but not gated".

use std::process::ExitCode;

/// One benchmark record: (name, before_median_ns, after_median_ns).
type Record = (String, f64, f64);

/// Extract the `results` records from the bench JSON. The writer emits
/// one object per line with a fixed key order, so a tolerant scan for the
/// three known keys is enough — no JSON dependency needed.
fn parse_records(text: &str, path: &str) -> Vec<Record> {
    let mut out = Vec::new();
    for line in text.lines() {
        let Some(name) = field_str(line, "\"name\"") else {
            continue;
        };
        let before = field_num(line, "\"before_median_ns\"");
        let after = field_num(line, "\"after_median_ns\"");
        match (before, after) {
            (Some(b), Some(a)) => out.push((name, b, a)),
            _ => eprintln!("warning: {path}: malformed result line skipped: {line}"),
        }
    }
    out
}

fn field_str(line: &str, key: &str) -> Option<String> {
    let rest = &line[line.find(key)? + key.len()..];
    let rest = rest.trim_start().strip_prefix(':')?.trim_start();
    let rest = rest.strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_string())
}

fn field_num(line: &str, key: &str) -> Option<f64> {
    let rest = &line[line.find(key)? + key.len()..];
    let rest = rest.trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn load(path: &str) -> Result<Vec<Record>, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let records = parse_records(&text, path);
    if records.is_empty() {
        return Err(format!("{path}: no benchmark records found"));
    }
    Ok(records)
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut files: Vec<String> = Vec::new();
    let mut max_regression_pct = 25.0f64;
    let mut absolute = false;
    let mut required: Vec<String> = Vec::new();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--max-regression-pct" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => max_regression_pct = v,
                None => {
                    eprintln!("--max-regression-pct needs a numeric argument");
                    return ExitCode::FAILURE;
                }
            },
            "--absolute" => absolute = true,
            "--require" => match args.next() {
                Some(name) => required.push(name),
                None => {
                    eprintln!("--require needs a benchmark group name");
                    return ExitCode::FAILURE;
                }
            },
            other => files.push(other.to_string()),
        }
    }
    let [baseline_path, candidate_path] = files.as_slice() else {
        eprintln!("usage: bench_compare [--max-regression-pct N] [--absolute] [--require GROUP]... <baseline.json> <candidate.json>");
        return ExitCode::FAILURE;
    };
    let (baseline, candidate) = match (load(baseline_path), load(candidate_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (b, c) => {
            for e in [b.err(), c.err()].into_iter().flatten() {
                eprintln!("error: {e}");
            }
            return ExitCode::FAILURE;
        }
    };

    let allowed = 1.0 + max_regression_pct / 100.0;
    let mut shared = 0usize;
    let mut gated: Vec<&str> = Vec::new();
    let mut failures: Vec<String> = Vec::new();
    println!(
        "{:<32} {:>14} {:>14} {:>9}  verdict",
        "benchmark", "base norm", "cand norm", "ratio"
    );
    for (name, b_before, b_after) in &baseline {
        let Some((_, c_before, c_after)) = candidate.iter().find(|(n, _, _)| n == name) else {
            println!("{name:<32} {:>14} {:>14} {:>9}  baseline-only (not gated)", "-", "-", "-");
            continue;
        };
        if *b_before <= 0.0 || *c_before <= 0.0 || *b_after <= 0.0 || *c_after <= 0.0 {
            println!("{name:<32} {:>14} {:>14} {:>9}  degenerate medians (not gated)", "-", "-", "-");
            continue;
        }
        shared += 1;
        gated.push(name.as_str());
        let base_norm = b_after / b_before;
        let cand_norm = c_after / c_before;
        let ratio = cand_norm / base_norm;
        let mut verdict = if ratio > allowed { "REGRESSED" } else { "ok" };
        if absolute && *c_after > b_after * allowed {
            verdict = "REGRESSED";
        }
        println!(
            "{name:<32} {base_norm:>14.6} {cand_norm:>14.6} {ratio:>8.2}x  {verdict}"
        );
        if verdict == "REGRESSED" {
            failures.push(format!(
                "{name}: normalized median {cand_norm:.6} vs baseline {base_norm:.6} \
                 ({:.1}% worse, allowed {max_regression_pct:.1}%)",
                (ratio - 1.0) * 100.0
            ));
        }
    }
    for (name, _, _) in &candidate {
        if !baseline.iter().any(|(n, _, _)| n == name) {
            println!("{name:<32} {:>14} {:>14} {:>9}  candidate-only (new, not gated)", "-", "-", "-");
        }
    }
    if shared == 0 {
        eprintln!(
            "error: no benchmark groups shared between {baseline_path} and {candidate_path} — \
             the gate would be vacuous; update the baseline deliberately"
        );
        return ExitCode::FAILURE;
    }
    for name in &required {
        if !gated.iter().any(|g| g == name) {
            failures.push(format!(
                "{name}: required group is not part of the gated shared set — \
                 renamed/added benchmarks must be carried into the committed baseline"
            ));
        }
    }
    if failures.is_empty() {
        println!("\nbench gate passed: {shared} shared group(s) within {max_regression_pct:.0}% of baseline");
        ExitCode::SUCCESS
    } else {
        eprintln!("\nbench gate FAILED:");
        for f in &failures {
            eprintln!("  {f}");
        }
        ExitCode::FAILURE
    }
}
