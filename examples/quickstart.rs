//! Quickstart: synthesize a conversational agent for a tiny database in
//! ~60 lines, then hold a short dialogue with it.
//!
//! Run with: `cargo run -p cat-examples --bin quickstart`

use cat_core::{AnnotationFile, CatBuilder};
use cat_txdb::{row, DataType, Database, ParamDef, ParamExpr, ProcOp, Procedure, TableSchema};

fn main() {
    // 1. A database: one table, one read-only transaction.
    let mut db = Database::new();
    db.create_table(
        TableSchema::builder("movie")
            .column("movie_id", DataType::Int)
            .column("title", DataType::Text)
            .column("genre", DataType::Text)
            .column("year", DataType::Int)
            .primary_key(&["movie_id"])
            .build()
            .expect("valid schema"),
    )
    .expect("create table");
    let movies = [
        (1, "Forrest Gump", "Drama", 1994),
        (2, "Heat", "Crime", 1995),
        (3, "Alien", "Horror", 1979),
        (4, "Fargo", "Crime", 1996),
        (5, "Casablanca", "Romance", 1942),
    ];
    for (id, title, genre, year) in movies {
        db.insert("movie", row![id, title, genre, year])
            .expect("insert");
    }
    db.register_procedure(
        Procedure::builder("movie_info")
            .describe("Look up a movie")
            .param(
                ParamDef::entity("movie_id", DataType::Int, "movie", "movie_id")
                    .describe("movie of interest"),
            )
            .op(ProcOp::Select {
                table: "movie".into(),
                filter: vec![("movie_id".into(), ParamExpr::param("movie_id"))],
                columns: None,
            })
            .build()
            .expect("valid procedure"),
    )
    .expect("register");

    // 2. The only manual input CAT needs: a few templates + annotations.
    let annotations = AnnotationFile::parse(
        r#"
table movie
  column title ask=preferred awareness=0.9 display="title of the movie"
  column genre awareness=0.7
  column year awareness=0.4

task movie_info
  request "tell me about a movie"
  request "i want information on a film"

slot movie_title source=movie.title
  inform "the movie title is {movie_title}"
  inform "i mean {movie_title}"
slot movie_genre source=movie.genre
  inform "it is a {movie_genre} movie"
"#,
    )
    .expect("annotations parse");

    // 3. Synthesize.
    let (mut agent, report) = CatBuilder::new(db)
        .with_annotations(&annotations)
        .expect("annotations apply")
        .with_seed(7)
        .synthesize();
    println!("Synthesized an agent:");
    println!("  tasks:            {}", report.n_tasks);
    println!("  NLU examples:     {}", report.n_nlu_examples);
    println!("  dialogue flows:   {}", report.n_flows);
    println!("  intents:          {}", report.intents.join(", "));
    println!();

    // 4. Talk to it.
    for user in [
        "hello",
        "tell me about a movie",
        "it is a Crime movie",
        "Fargo",
    ] {
        println!("user:  {user}");
        let reply = agent.respond(user);
        println!("agent: {}   [{}]", reply.text, reply.action);
        if let Some(outcome) = reply.executed {
            println!(
                "       -> transaction returned {} row(s)",
                outcome.rows.len()
            );
        }
    }
}
