//! The paper's demo scenario (Figure 1): a fully synthesized agent for a
//! cinema database — ticket reservation with data-aware account and
//! screening identification, misspelling correction, explicit choice among
//! remaining candidates, confirmation and transactional execution; then a
//! cancellation of the same reservation.
//!
//! Run with: `cargo run -p cat-examples --bin cinema_booking`

use cat_core::{AnnotationFile, CatBuilder};
use cat_corpus::{generate_cinema, CinemaConfig, CINEMA_ANNOTATIONS};
use cat_examples::print_exchange;

fn main() {
    println!("== Synthesizing the cinema agent (paper Figure 2, offline phase) ==");
    let db = generate_cinema(&CinemaConfig::default()).expect("generate cinema db");
    println!(
        "database: {} movies, {} customers, {} screenings, {} reservations",
        db.table("movie").unwrap().len(),
        db.table("customer").unwrap().len(),
        db.table("screening").unwrap().len(),
        db.table("reservation").unwrap().len(),
    );
    let annotations = AnnotationFile::parse(CINEMA_ANNOTATIONS).expect("annotations");
    let (mut agent, report) = CatBuilder::new(db)
        .with_annotations(&annotations)
        .expect("apply annotations")
        .with_seed(2022)
        .synthesize();
    println!(
        "synthesized: {} tasks, {} NLU examples, {} self-play flows\n",
        report.n_tasks, report.n_nlu_examples, report.n_flows
    );

    // Pick a real customer and a really-screened movie so the scripted
    // user answers truthfully (misspelling the title on purpose).
    let (name, city, title) = {
        let db = agent.db();
        let (_, c) = db.table("customer").unwrap().scan().next().unwrap();
        let name = c.get(1).unwrap().render();
        let city = c.get(2).unwrap().render();
        let s = db.table("screening").unwrap().scan().next().unwrap().1;
        let movie_id = s.get(1).unwrap().clone();
        let (_, m) = db.table("movie").unwrap().get_by_pk(&[movie_id]).unwrap();
        (name, city, m.get(1).unwrap().render())
    };
    let mut typo_title = title;
    typo_title.remove(1); // misspell it — the agent should correct.

    println!("== Dialogue (paper Figure 1) ==");
    let reservations_before = agent.db().table("reservation").unwrap().len();
    let mut response = agent.respond("Hi, I want to buy 4 tickets for today");
    print_exchange("Hi, I want to buy 4 tickets for today", &response);
    let mut guard = 0;
    while response.executed.is_none() && guard < 25 {
        guard += 1;
        let q = response.text.to_lowercase();
        let reply = match response.action.as_str() {
            "a:confirm_task" => "yes, do it".to_string(),
            "a:offer_options" => "1".to_string(),
            _ => {
                if q.contains("ticket amount") || q.contains("number of tickets") {
                    "4".into()
                } else if q.contains("name") && !q.contains("actor") {
                    format!("my name is {name}")
                } else if q.contains("city") {
                    city.clone()
                } else if q.contains("title") {
                    format!("i want to watch {typo_title}")
                } else {
                    "i do not know".into()
                }
            }
        };
        response = agent.respond(&reply);
        print_exchange(&reply, &response);
    }
    let reservations_after = agent.db().table("reservation").unwrap().len();
    println!(
        "\nreservations: {reservations_before} -> {reservations_after} (transaction {})",
        if reservations_after > reservations_before {
            "committed"
        } else {
            "NOT committed"
        }
    );

    println!("\n== Cache statistics of the data-aware policy ==");
    let (hits, misses) = agent.policy().cache.stats();
    println!("entropy cache: {hits} hits / {misses} misses");
}
