//! Shared helpers for the CAT example binaries.

use cat_core::AgentResponse;

/// Print one dialogue exchange in the style of the paper's Figure 1.
pub fn print_exchange(user: &str, reply: &AgentResponse) {
    println!("  user:  {user}");
    println!("  agent: {}", reply.text);
}

/// Drive an agent with a scripted answer function until a transaction
/// executes or the turn budget is exhausted. Returns the number of turns
/// and whether execution happened.
pub fn drive<F>(
    agent: &mut cat_core::ConversationalAgent,
    opening: &str,
    mut answer: F,
    max_turns: usize,
) -> (usize, bool)
where
    F: FnMut(&AgentResponse) -> String,
{
    let mut response = agent.respond(opening);
    print_exchange(opening, &response);
    let mut turns = 1;
    for _ in 0..max_turns {
        if response.executed.is_some() {
            return (turns, true);
        }
        let reply = answer(&response);
        response = agent.respond(&reply);
        print_exchange(&reply, &response);
        turns += 1;
    }
    (turns, response.executed.is_some())
}
