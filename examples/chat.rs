//! Interactive chat with the synthesized cinema agent (the live half of
//! the paper's demo). Type natural language; `quit` exits.
//!
//! Run with: `cargo run -p cat-examples --bin chat`
//!
//! Useful things to try (entity names depend on the seed; the agent
//! prints a few on startup):
//!   i want to buy 4 tickets
//!   my name is `<customer name>`
//!   i want to watch `<movie title, misspellings welcome>`
//!   i do not know
//!   yes / no / never mind
//!   which screenings do you have

use std::io::{self, BufRead, Write};

use cat_core::{AnnotationFile, CatBuilder};
use cat_corpus::{generate_cinema, CinemaConfig, CINEMA_ANNOTATIONS};

fn main() {
    println!("Synthesizing the cinema agent (a few seconds)...");
    let db = generate_cinema(&CinemaConfig::default()).expect("generate db");
    let annotations = AnnotationFile::parse(CINEMA_ANNOTATIONS).expect("annotations");
    let (mut agent, report) = CatBuilder::new(db)
        .with_annotations(&annotations)
        .expect("apply annotations")
        .with_seed(2022)
        .synthesize();
    println!(
        "ready: {} tasks, {} NLU examples, {} flows",
        report.n_tasks, report.n_nlu_examples, report.n_flows
    );
    {
        let db = agent.db();
        let customers: Vec<String> = db
            .table("customer")
            .unwrap()
            .scan()
            .take(3)
            .map(|(_, r)| r.get(1).unwrap().render())
            .collect();
        let movies: Vec<String> = db
            .table("movie")
            .unwrap()
            .scan()
            .take(3)
            .map(|(_, r)| r.get(1).unwrap().render())
            .collect();
        println!("some customers: {}", customers.join(", "));
        println!("some movies:    {}", movies.join(", "));
    }
    println!("---- type `quit` to exit ----");

    let stdin = io::stdin();
    loop {
        print!("you>  ");
        io::stdout().flush().expect("flush");
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break; // EOF
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line.eq_ignore_ascii_case("quit") || line.eq_ignore_ascii_case("exit") {
            break;
        }
        let reply = agent.respond(line);
        println!("agent> {}", reply.text);
        if let Some(outcome) = reply.executed {
            if !outcome.rows.is_empty() {
                for row in outcome.rows.iter().take(8) {
                    println!(
                        "       | {}",
                        row.iter()
                            .map(|v| v.render())
                            .collect::<Vec<_>>()
                            .join(" | ")
                    );
                }
            }
        }
    }
    println!("bye!");
}
