//! Reproduction of the paper's Figure 3: the inputs and outputs of CAT's
//! training-data generation pipeline — extracted tasks, the developer's
//! templates, and samples of the synthesized NLU and DM training data.
//!
//! Run with: `cargo run -p cat-examples --bin datagen_pipeline`

use cat_core::AnnotationFile;
use cat_corpus::{generate_cinema, CinemaConfig, CINEMA_ANNOTATIONS};
use cat_datagen::{
    extract_tasks, generate_nlu_data, simulate_flows, to_bundle, to_json, DataGenConfig,
    SelfPlayConfig,
};

fn main() {
    let mut db = generate_cinema(&CinemaConfig::small(3)).expect("generate db");
    let annotations = AnnotationFile::parse(CINEMA_ANNOTATIONS).expect("annotations");
    annotations.apply_to(&mut db).expect("apply");
    let templates = annotations.template_set();

    println!("== Database and Transactions (input) ==");
    for t in db.table_names() {
        let table = db.table(t).unwrap();
        let cols: Vec<String> = table
            .schema()
            .columns()
            .iter()
            .map(|c| c.name.clone())
            .collect();
        println!("  {t}({})  [{} rows]", cols.join(", "), table.len());
    }
    println!();
    for proc in db.procedures() {
        let params: Vec<String> = proc
            .params()
            .iter()
            .map(|p| format!("IN {}", p.name))
            .collect();
        println!("  FUNCTION {}({})", proc.name(), params.join(", "));
    }

    println!("\n== Extracted Tasks and Schema Information ==");
    let tasks = extract_tasks(&db);
    for task in &tasks {
        let params: Vec<String> = task
            .params
            .iter()
            .map(|p| match &p.entity {
                Some((table, _)) => format!("{} ({table})", p.name),
                None => format!("{} ({})", p.name, p.ty.keyword().to_lowercase()),
            })
            .collect();
        println!("  {}: {}", task.name, params.join(", "));
    }

    println!("\n== Natural Language Templates (manually defined) ==");
    for (slot, temps) in &templates.inform {
        for t in temps.iter().take(1) {
            println!("  [{slot}] {t}");
        }
    }

    println!("\n== Generated NLU Training Data (sample) ==");
    let cfg = DataGenConfig {
        per_template: 2,
        ..DataGenConfig::default()
    };
    let nlu_data = generate_nlu_data(&db, &tasks, &templates, &cfg);
    println!("  {} examples total; a sample:", nlu_data.len());
    for ex in nlu_data.iter().filter(|e| !e.slots.is_empty()).take(5) {
        let slots: Vec<String> = ex
            .slots
            .iter()
            .map(|s| format!("{}='{}'", s.slot, s.value))
            .collect();
        println!("  \"{}\"", ex.text);
        println!(
            "     -> intent: {} ; slots: {}",
            ex.intent,
            slots.join(", ")
        );
    }

    println!("\n== Generated DM Training Data (sample flow) ==");
    let flows = simulate_flows(
        &tasks,
        &SelfPlayConfig {
            dialogues: 40,
            ..Default::default()
        },
    );
    println!("  {} flows total; the first:", flows.len());
    for turn in &flows[0].turns {
        println!("  {}: {}", turn.speaker, &turn.label[2..]);
    }

    println!("\n== JSON export (RASA-file equivalent) ==");
    let bundle = to_bundle(&nlu_data[..3.min(nlu_data.len())], &flows[..1]);
    println!("{}", to_json(&bundle).expect("serialize"));
}
