//! A second domain, zero code changes: synthesize an agent for the flight
//! database (the ATIS-like domain of the paper's evaluation) from its own
//! annotation file, then book a flight conversationally.
//!
//! Run with: `cargo run -p cat-examples --bin flight_info`

use cat_core::{AnnotationFile, CatBuilder};
use cat_corpus::{generate_flights, FlightConfig, FLIGHT_ANNOTATIONS};
use cat_examples::print_exchange;

fn main() {
    let db = generate_flights(&FlightConfig::default()).expect("generate flights db");
    println!(
        "flight database: {} airlines, {} airports, {} flights, {} passengers",
        db.table("airline").unwrap().len(),
        db.table("airport").unwrap().len(),
        db.table("flight").unwrap().len(),
        db.table("passenger").unwrap().len(),
    );
    let annotations = AnnotationFile::parse(FLIGHT_ANNOTATIONS).expect("annotations");
    let (mut agent, report) = CatBuilder::new(db)
        .with_annotations(&annotations)
        .expect("apply")
        .with_seed(1990)
        .synthesize();
    println!(
        "synthesized: {} tasks ({}), {} NLU examples\n",
        report.n_tasks,
        agent
            .tasks()
            .iter()
            .map(|t| t.name.clone())
            .collect::<Vec<_>>()
            .join(", "),
        report.n_nlu_examples
    );

    // A truthful scripted passenger.
    let (pname, pcity, airline, day) = {
        let db = agent.db();
        let (_, p) = db.table("passenger").unwrap().scan().next().unwrap();
        let (_, f) = db.table("flight").unwrap().scan().next().unwrap();
        let airline_id = f.get(1).unwrap().clone();
        let (_, a) = db
            .table("airline")
            .unwrap()
            .get_by_pk(&[airline_id])
            .unwrap();
        (
            p.get(1).unwrap().render(),
            p.get(2).unwrap().render(),
            a.get(1).unwrap().render(),
            f.get(4).unwrap().render(),
        )
    };

    println!("== Booking dialogue ==");
    let bookings_before = agent.db().table("booking").unwrap().len();
    let mut response = agent.respond("i want to book a flight");
    print_exchange("i want to book a flight", &response);
    let mut guard = 0;
    while response.executed.is_none() && guard < 25 {
        guard += 1;
        let q = response.text.to_lowercase();
        let reply = match response.action.as_str() {
            "a:confirm_task" => "yes".to_string(),
            "a:offer_options" => "1".to_string(),
            _ => {
                if q.contains("seats") {
                    "2".into()
                } else if q.contains("name") {
                    format!("my name is {pname}")
                } else if q.contains("city") && q.contains("passenger") {
                    pcity.clone()
                } else if q.contains("airline") {
                    format!("i fly with {airline}")
                } else if q.contains("time of day") {
                    "i do not know".into()
                } else if q.contains("day") {
                    day.clone()
                } else {
                    "i do not know".into()
                }
            }
        };
        response = agent.respond(&reply);
        print_exchange(&reply, &response);
    }
    println!(
        "\nbookings: {} -> {}",
        bookings_before,
        agent.db().table("booking").unwrap().len()
    );
}
