//! The machine form of the paper's Figure 4 GUI: schema annotation.
//!
//! Shows the annotation file format, applies it to a live schema, and
//! demonstrates the effect on the data-aware policy (annotating a column
//! `avoid` changes what the agent asks for).
//!
//! Run with: `cargo run -p cat-examples --bin schema_annotation`

use cat_core::AnnotationFile;
use cat_corpus::{generate_cinema, CinemaConfig, CINEMA_ANNOTATIONS};
use cat_policy::{CandidateSet, DataAwarePolicy, SlotSelector};

fn main() {
    let annotations = AnnotationFile::parse(CINEMA_ANNOTATIONS).expect("parse");

    println!("== The annotation file (Figure 4, textual form) ==");
    println!("{}", annotations.render());

    // Apply to a live schema and show the policy consequences.
    let mut db = generate_cinema(&CinemaConfig::small(5)).expect("db");

    println!("== Policy behaviour BEFORE annotations ==");
    let cs = CandidateSet::all(&db, "customer").expect("candidates");
    let mut policy = DataAwarePolicy::default();
    let choice = policy.choose(&db, &cs, &[]).expect("some attribute");
    println!("  first question to identify a customer: {}", choice.key());

    annotations.apply_to(&mut db).expect("apply");

    println!("\n== Policy behaviour AFTER annotations ==");
    let mut policy = DataAwarePolicy::default();
    let choice = policy.choose(&db, &cs, &[]).expect("some attribute");
    println!("  first question to identify a customer: {}", choice.key());
    println!("  (ids keep their automatic `avoid` annotation; awareness priors now");
    println!("   reflect the developer's domain knowledge)");

    // Show the full ranking with its score decomposition.
    println!("\n== Attribute ranking for customer identification (explained) ==");
    let policy = DataAwarePolicy::default();
    let explanations = policy.explain(&db, &cs, &[]);
    print!(
        "{}",
        cat_policy::render_explanations(&explanations[..8.min(explanations.len())])
    );

    // Round-trip guarantee.
    let reparsed = AnnotationFile::parse(&annotations.render()).expect("reparse");
    assert_eq!(reparsed, annotations);
    println!("\n(render -> parse round-trip verified)");
}
