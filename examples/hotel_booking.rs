//! Third domain, zero code changes: the hotel-booking application the
//! paper's abstract names alongside cinema ticketing. Synthesizes an agent
//! for the hotel database from its annotation file and books a room.
//!
//! Run with: `cargo run -p cat-examples --bin hotel_booking`

use cat_core::{AnnotationFile, CatBuilder};
use cat_corpus::{generate_hotel, HotelConfig, HOTEL_ANNOTATIONS};
use cat_examples::print_exchange;

fn main() {
    let db = generate_hotel(&HotelConfig::default()).expect("generate hotel db");
    println!(
        "hotel database: {} hotels, {} rooms, {} guests, {} bookings",
        db.table("hotel").unwrap().len(),
        db.table("room").unwrap().len(),
        db.table("guest").unwrap().len(),
        db.table("booking").unwrap().len(),
    );
    let annotations = AnnotationFile::parse(HOTEL_ANNOTATIONS).expect("annotations");
    let (mut agent, report) = CatBuilder::new(db)
        .with_annotations(&annotations)
        .expect("apply")
        .with_seed(7)
        .synthesize();
    println!(
        "synthesized: {} tasks, {} NLU examples\n",
        report.n_tasks, report.n_nlu_examples
    );

    let (guest, city, hotel, room_type) = {
        let db = agent.db();
        let (_, g) = db.table("guest").unwrap().scan().next().unwrap();
        let (_, r) = db.table("room").unwrap().scan().next().unwrap();
        let hid = r.get(1).unwrap().clone();
        let (_, h) = db.table("hotel").unwrap().get_by_pk(&[hid]).unwrap();
        (
            g.get(1).unwrap().render(),
            g.get(2).unwrap().render(),
            h.get(1).unwrap().render(),
            r.get(2).unwrap().render(),
        )
    };

    println!("== Booking dialogue ==");
    let before = agent.db().table("booking").unwrap().len();
    let mut response = agent.respond("i want to book a room");
    print_exchange("i want to book a room", &response);
    let mut guard = 0;
    while response.executed.is_none() && guard < 25 {
        guard += 1;
        let q = response.text.to_lowercase();
        let reply = match response.action.as_str() {
            "a:confirm_task" => "yes".to_string(),
            "a:offer_options" => "1".to_string(),
            _ => {
                if q.contains("nights") {
                    "3".into()
                } else if q.contains("name") && q.contains("booking") {
                    format!("my name is {guest}")
                } else if q.contains("name") && q.contains("hotel") {
                    format!("the hotel is {hotel}")
                } else if q.contains("room type") {
                    format!("a {room_type} room please")
                } else if q.contains("city") {
                    city.clone()
                } else {
                    "i do not know".into()
                }
            }
        };
        response = agent.respond(&reply);
        print_exchange(&reply, &response);
    }
    println!(
        "\nbookings: {} -> {}",
        before,
        agent.db().table("booking").unwrap().len()
    );
}
