//! Interactive SQL shell over the generated cinema database — the
//! substrate on its own. Supports the SQL subset of `cat-txdb`:
//! CREATE TABLE / INSERT / SELECT (joins, WHERE, GROUP BY + aggregates,
//! ORDER BY, LIMIT) / UPDATE / DELETE, plus `EXPLAIN [ANALYZE] SELECT`
//! to print the lowered operator tree (with `ANALYZE`: executed, with
//! actual row counts and budget peaks per operator), explicit
//! transactions (`BEGIN` pins a snapshot for the following statements
//! until `COMMIT` or `ROLLBACK`), and `CHECKPOINT` in durable mode.
//!
//! Run with: `cargo run -p cat-examples --bin sql_shell`
//!
//! In-memory by default. With `--data-dir DIR` the shell opens a durable
//! database in `DIR`: every committed statement is in the write-ahead
//! log before it reports success, and a later start with the same
//! `--data-dir` recovers exactly the last committed state. A fresh
//! directory is seeded with the generated cinema data and immediately
//! checkpointed.

use std::io::{self, BufRead, Write};

use cat_corpus::{generate_cinema, CinemaConfig};
use cat_txdb::sql::{execute_script, QueryResult, Session};
use cat_txdb::{dump_sql, Database, TxdbError};

/// `--data-dir DIR` from the command line, if given.
fn data_dir_arg() -> Option<String> {
    let usage = || -> ! {
        eprintln!("usage: sql_shell [--data-dir DIR]");
        std::process::exit(2);
    };
    let mut args = std::env::args().skip(1);
    let arg = args.next()?;
    let dir = if arg == "--data-dir" {
        args.next().unwrap_or_else(|| {
            eprintln!("error: --data-dir requires a directory argument");
            std::process::exit(2);
        })
    } else if let Some(dir) = arg.strip_prefix("--data-dir=") {
        dir.to_string()
    } else {
        usage()
    };
    if args.next().is_some() {
        usage()
    }
    Some(dir)
}

fn main() {
    let mut db = match data_dir_arg() {
        None => generate_cinema(&CinemaConfig::default()).expect("generate db"),
        Some(dir) => {
            let mut db = Database::open(&dir).unwrap_or_else(|e| {
                eprintln!("error: cannot open data directory `{dir}`: {e}");
                std::process::exit(1);
            });
            if db.table_names().is_empty() {
                // Fresh directory: seed it with the cinema corpus. The
                // seed flows through the normal SQL path (and thus the
                // log); the checkpoint folds it into the snapshot so
                // later starts skip replaying it.
                let cinema = generate_cinema(&CinemaConfig::default()).expect("generate db");
                let script = dump_sql(&cinema).expect("dump seed");
                execute_script(&mut db, &script).expect("seed durable db");
                db.checkpoint().expect("checkpoint seed");
                println!("seeded cinema database into {dir}");
            } else {
                println!("recovered database from {dir}");
            }
            db
        }
    };
    println!(
        "cinema database loaded; tables: {}",
        db.table_names().join(", ")
    );
    if db.is_durable() {
        println!("durable mode: commits are logged; CHECKPOINT compacts the log");
    }
    println!("example: SELECT genre, count(*) FROM movie GROUP BY genre ORDER BY genre;");
    println!("         EXPLAIN ANALYZE SELECT title FROM movie WHERE genre = 'Drama';");
    println!("         BEGIN; UPDATE ...; SELECT ...; COMMIT;  (or ROLLBACK)");
    println!("---- type `quit` to exit ----");
    let stdin = io::stdin();
    // The session carries at most one open transaction across lines.
    let mut session = Session::new();
    loop {
        let prompt = if session.open_txn().is_some() {
            "sql*> "
        } else {
            "sql> "
        };
        print!("{prompt}");
        io::stdout().flush().expect("flush");
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break;
        }
        let line = line.trim().trim_end_matches(';');
        if line.is_empty() {
            continue;
        }
        if line.eq_ignore_ascii_case("quit") || line.eq_ignore_ascii_case("exit") {
            break;
        }
        match session.execute(&mut db, line) {
            Ok(QueryResult::Rows(rs)) => {
                println!("{}", rs.columns.join(" | "));
                for row in rs.rows.iter().take(40) {
                    println!(
                        "{}",
                        row.iter()
                            .map(|v| v.render())
                            .collect::<Vec<_>>()
                            .join(" | ")
                    );
                }
                if rs.rows.len() > 40 {
                    println!("... ({} rows total)", rs.rows.len());
                }
            }
            Ok(QueryResult::Created) => println!("ok: table created"),
            Ok(QueryResult::Inserted(n)) => println!("ok: {n} row(s) inserted"),
            Ok(QueryResult::Updated(n)) => println!("ok: {n} row(s) updated"),
            Ok(QueryResult::Deleted(n)) => println!("ok: {n} row(s) deleted"),
            Ok(QueryResult::Begun) => println!("ok: transaction started"),
            Ok(QueryResult::Committed) => println!("ok: committed"),
            Ok(QueryResult::RolledBack) => println!("ok: rolled back"),
            Ok(QueryResult::Checkpointed) => println!("ok: checkpoint written, log truncated"),
            Err(TxdbError::ResourceExhausted { budget, .. }) => println!(
                "error: query exceeded memory budget ({budget} bytes); \
                 retry or raise the budget"
            ),
            Err(TxdbError::Serialization { table, detail }) => println!(
                "error: serialization conflict on `{table}` ({detail}); \
                 transaction rolled back — retry"
            ),
            Err(e) => println!("error: {e}"),
        }
    }
    if session.open_txn().is_some() {
        // Drop the open transaction cleanly on exit.
        let _ = session.execute(&mut db, "ROLLBACK");
        println!("(open transaction rolled back)");
    }
    if db.is_durable() {
        // Not required for durability (commits already are); it just
        // makes the next start load a snapshot instead of replaying.
        match db.close() {
            Ok(()) => println!("(checkpointed on exit)"),
            Err(e) => println!("(exit checkpoint failed: {e})"),
        }
    }
    println!("bye!");
}
