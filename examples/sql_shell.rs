//! Interactive SQL shell over the generated cinema database — the
//! substrate on its own. Supports the SQL subset of `cat-txdb`:
//! CREATE TABLE / INSERT / SELECT (joins, WHERE, GROUP BY + aggregates,
//! ORDER BY, LIMIT) / UPDATE / DELETE, plus `EXPLAIN [ANALYZE] SELECT`
//! to print the lowered operator tree (with `ANALYZE`: executed, with
//! actual row counts and budget peaks per operator), and explicit
//! transactions: `BEGIN` pins a snapshot for the following statements
//! until `COMMIT` or `ROLLBACK`.
//!
//! Run with: `cargo run -p cat-examples --bin sql_shell`

use std::io::{self, BufRead, Write};

use cat_corpus::{generate_cinema, CinemaConfig};
use cat_txdb::sql::{QueryResult, Session};
use cat_txdb::TxdbError;

fn main() {
    let mut db = generate_cinema(&CinemaConfig::default()).expect("generate db");
    println!(
        "cinema database loaded; tables: {}",
        db.table_names().join(", ")
    );
    println!("example: SELECT genre, count(*) FROM movie GROUP BY genre ORDER BY genre;");
    println!("         EXPLAIN ANALYZE SELECT title FROM movie WHERE genre = 'Drama';");
    println!("         BEGIN; UPDATE ...; SELECT ...; COMMIT;  (or ROLLBACK)");
    println!("---- type `quit` to exit ----");
    let stdin = io::stdin();
    // The session carries at most one open transaction across lines.
    let mut session = Session::new();
    loop {
        let prompt = if session.open_txn().is_some() {
            "sql*> "
        } else {
            "sql> "
        };
        print!("{prompt}");
        io::stdout().flush().expect("flush");
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break;
        }
        let line = line.trim().trim_end_matches(';');
        if line.is_empty() {
            continue;
        }
        if line.eq_ignore_ascii_case("quit") || line.eq_ignore_ascii_case("exit") {
            break;
        }
        match session.execute(&mut db, line) {
            Ok(QueryResult::Rows(rs)) => {
                println!("{}", rs.columns.join(" | "));
                for row in rs.rows.iter().take(40) {
                    println!(
                        "{}",
                        row.iter()
                            .map(|v| v.render())
                            .collect::<Vec<_>>()
                            .join(" | ")
                    );
                }
                if rs.rows.len() > 40 {
                    println!("... ({} rows total)", rs.rows.len());
                }
            }
            Ok(QueryResult::Created) => println!("ok: table created"),
            Ok(QueryResult::Inserted(n)) => println!("ok: {n} row(s) inserted"),
            Ok(QueryResult::Updated(n)) => println!("ok: {n} row(s) updated"),
            Ok(QueryResult::Deleted(n)) => println!("ok: {n} row(s) deleted"),
            Ok(QueryResult::Begun) => println!("ok: transaction started"),
            Ok(QueryResult::Committed) => println!("ok: committed"),
            Ok(QueryResult::RolledBack) => println!("ok: rolled back"),
            Err(TxdbError::ResourceExhausted { budget, .. }) => println!(
                "error: query exceeded memory budget ({budget} bytes); \
                 retry or raise the budget"
            ),
            Err(TxdbError::Serialization { table, detail }) => println!(
                "error: serialization conflict on `{table}` ({detail}); \
                 transaction rolled back — retry"
            ),
            Err(e) => println!("error: {e}"),
        }
    }
    if session.open_txn().is_some() {
        // Drop the open transaction cleanly on exit.
        let _ = session.execute(&mut db, "ROLLBACK");
        println!("(open transaction rolled back)");
    }
    println!("bye!");
}
